//! A single-owner facade over the per-thread and per-variable lists.
//!
//! In the full runtime (`ireplayer` crate) the per-thread lists live in
//! per-thread state and the per-variable lists live inside the shadow
//! synchronization objects, so that recording adds no shared mutable state
//! beyond what the application already synchronizes on.  [`EpochLog`]
//! gathers the same structures under a single owner for the cases where one
//! component holds the whole log: the rr-style serializing baseline, unit
//! tests, and offline inspection/export of a recorded epoch.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind, SyncOp, ThreadId, VarId};
use crate::thread_list::{ThreadList, ThreadListFull};
use crate::var_list::VarList;

/// A complete recorded epoch: every thread's list plus every variable's
/// list, owned by a single component.
///
/// # Example
///
/// ```
/// use ireplayer_log::{EpochLog, EventKind, SyncOp, ThreadId, VarId};
///
/// let mut log = EpochLog::new(64);
/// log.record_sync(ThreadId(0), VarId(0), SyncOp::MutexLock, 0).unwrap();
/// log.record_sync(ThreadId(1), VarId(0), SyncOp::MutexLock, 0).unwrap();
/// log.begin_replay();
/// assert!(log.is_turn(ThreadId(0), VarId(0)));
/// assert!(!log.is_turn(ThreadId(1), VarId(0)));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochLog {
    capacity_per_thread: usize,
    threads: BTreeMap<ThreadId, ThreadList>,
    vars: BTreeMap<VarId, VarList>,
}

impl EpochLog {
    /// Creates an empty log whose per-thread lists hold at most
    /// `capacity_per_thread` events.
    pub fn new(capacity_per_thread: usize) -> Self {
        EpochLog {
            capacity_per_thread,
            threads: BTreeMap::new(),
            vars: BTreeMap::new(),
        }
    }

    /// Returns the per-thread list for `thread`, creating it if needed.
    pub fn thread_mut(&mut self, thread: ThreadId) -> &mut ThreadList {
        let capacity = self.capacity_per_thread;
        self.threads
            .entry(thread)
            .or_insert_with(|| ThreadList::new(thread, capacity))
    }

    /// Returns the per-variable list for `var`, creating it if needed.
    pub fn var_mut(&mut self, var: VarId) -> &mut VarList {
        self.vars.entry(var).or_default()
    }

    /// Returns the per-thread list for `thread`, if any events were
    /// recorded for it.
    pub fn thread(&self, thread: ThreadId) -> Option<&ThreadList> {
        self.threads.get(&thread)
    }

    /// Returns the per-variable list for `var`, if any operations were
    /// recorded on it.
    pub fn var(&self, var: VarId) -> Option<&VarList> {
        self.vars.get(&var)
    }

    /// Records a synchronization event: appended to the thread's list and to
    /// the variable's list, as in Figure 4 of the paper.
    ///
    /// # Errors
    ///
    /// Returns [`ThreadListFull`] when the thread's pre-allocated entries
    /// are exhausted.
    pub fn record_sync(
        &mut self,
        thread: ThreadId,
        var: VarId,
        op: SyncOp,
        result: i64,
    ) -> Result<u32, ThreadListFull> {
        let index = self
            .thread_mut(thread)
            .append_mut(EventKind::Sync { var, op, result })?;
        self.var_mut(var).append(thread, op, index);
        Ok(index)
    }

    /// Records a try-lock: the attempt always enters the per-thread list
    /// (its result must be reproduced), but only successful acquisitions
    /// enter the per-variable list (§3.2.1).
    ///
    /// # Errors
    ///
    /// Returns [`ThreadListFull`] when the thread's pre-allocated entries
    /// are exhausted.
    pub fn record_trylock(&mut self, thread: ThreadId, var: VarId, acquired: bool) -> Result<u32, ThreadListFull> {
        let index = self.thread_mut(thread).append_mut(EventKind::Sync {
            var,
            op: SyncOp::MutexTryLock,
            result: i64::from(acquired),
        })?;
        if acquired {
            self.var_mut(var).append(thread, SyncOp::MutexTryLock, index);
        }
        Ok(index)
    }

    /// Records a system call (per-thread list only).
    ///
    /// # Errors
    ///
    /// Returns [`ThreadListFull`] when the thread's pre-allocated entries
    /// are exhausted.
    pub fn record_syscall(
        &mut self,
        thread: ThreadId,
        code: u16,
        outcome: crate::event::SyscallOutcome,
    ) -> Result<u32, ThreadListFull> {
        self.thread_mut(thread).append_mut(EventKind::Syscall { code, outcome })
    }

    /// Resets every cursor to the start of the recorded epoch.
    pub fn begin_replay(&mut self) {
        for list in self.threads.values_mut() {
            list.begin_replay();
        }
        for list in self.vars.values_mut() {
            list.begin_replay();
        }
    }

    /// Clears every list (epoch housekeeping).
    pub fn clear(&mut self) {
        for list in self.threads.values_mut() {
            list.clear_mut();
        }
        for list in self.vars.values_mut() {
            list.clear();
        }
    }

    /// Implements the replay rule of §3.5.1 for this log: `thread` may
    /// perform its next operation on `var` only if that operation is the
    /// next event in its per-thread list *and* the head of the variable's
    /// list belongs to it.
    pub fn is_turn(&self, thread: ThreadId, var: VarId) -> bool {
        let Some(thread_list) = self.threads.get(&thread) else {
            return false;
        };
        let Some(next) = thread_list.peek() else {
            return false;
        };
        if next.kind.var() != Some(var) {
            return false;
        }
        self.vars.get(&var).is_some_and(|v| v.is_turn(thread))
    }

    /// Advances both cursors after `thread` replays its next operation on
    /// `var`, returning the recorded event.
    pub fn advance(&mut self, thread: ThreadId, var: VarId) -> Option<Event> {
        let var_list = self.vars.get(&var)?;
        let event = self.threads.get(&thread)?.advance()?;
        var_list.advance();
        Some(event)
    }

    /// Total number of recorded events across all threads.
    pub fn total_events(&self) -> usize {
        self.threads.values().map(ThreadList::len).sum()
    }

    /// Returns `true` when every thread has replayed all of its events.
    pub fn replay_complete(&self) -> bool {
        self.threads.values().all(ThreadList::replay_complete)
    }

    /// Iterates over the recorded per-thread lists.
    pub fn threads_iter(&self) -> impl Iterator<Item = (&ThreadId, &ThreadList)> {
        self.threads.iter()
    }

    /// Iterates over the recorded per-variable lists.
    pub fn vars_iter(&self) -> impl Iterator<Item = (&VarId, &VarList)> {
        self.vars.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SyscallOutcome;

    /// Re-create the running example of Figure 3/4: two threads, three
    /// locks, two system calls.
    fn figure4_log() -> EpochLog {
        let mut log = EpochLog::new(32);
        let (t1, t2) = (ThreadId(1), ThreadId(2));
        let (lock1, lock2, lock3) = (VarId(1), VarId(2), VarId(3));

        // Thread1: Lock(1); Lock(2); Lock(3)   (unlocks are not recorded)
        log.record_sync(t1, lock1, SyncOp::MutexLock, 0).unwrap();
        log.record_sync(t1, lock2, SyncOp::MutexLock, 0).unwrap();
        log.record_sync(t1, lock3, SyncOp::MutexLock, 0).unwrap();
        // Thread2: Lock(2); Syscall1; Lock(1); Syscall2
        log.record_sync(t2, lock2, SyncOp::MutexLock, 0).unwrap();
        log.record_syscall(t2, 1, SyscallOutcome::ret(0)).unwrap();
        log.record_sync(t2, lock1, SyncOp::MutexLock, 0).unwrap();
        log.record_syscall(t2, 2, SyscallOutcome::ret(0)).unwrap();
        log
    }

    #[test]
    fn per_variable_lists_capture_cross_thread_order() {
        let log = figure4_log();
        let lock1 = log.var(VarId(1)).unwrap();
        assert_eq!(lock1.entries()[0].thread, ThreadId(1));
        assert_eq!(lock1.entries()[1].thread, ThreadId(2));
        let lock2 = log.var(VarId(2)).unwrap();
        assert_eq!(lock2.len(), 2);
        let lock3 = log.var(VarId(3)).unwrap();
        assert_eq!(lock3.len(), 1);
        assert_eq!(log.total_events(), 7);
    }

    #[test]
    fn syscalls_only_appear_in_thread_lists() {
        let log = figure4_log();
        let t2 = log.thread(ThreadId(2)).unwrap();
        assert_eq!(t2.len(), 4);
        assert!(matches!(t2.snapshot()[1].kind, EventKind::Syscall { code: 1, .. }));
        // No per-variable list exists for syscalls.
        assert_eq!(log.vars_iter().count(), 3);
    }

    #[test]
    fn replay_rule_orders_contended_variables() {
        let mut log = figure4_log();
        log.begin_replay();
        assert!(!log.replay_complete());
        // lock1 must go to thread 1 first.
        assert!(log.is_turn(ThreadId(1), VarId(1)));
        assert!(!log.is_turn(ThreadId(2), VarId(1)));
        // lock2 was also acquired by thread 1 first in this recording, so
        // thread 2 must wait for it even though it is thread 2's next event.
        assert!(!log.is_turn(ThreadId(2), VarId(2)));
        log.advance(ThreadId(1), VarId(1)).unwrap();
        log.advance(ThreadId(1), VarId(2)).unwrap();
        // Once thread 1's lock2 acquisition has been replayed, thread 2 may
        // proceed with its own.
        assert!(log.is_turn(ThreadId(2), VarId(2)));
        log.advance(ThreadId(1), VarId(3)).unwrap();
        assert!(log.thread(ThreadId(1)).unwrap().replay_complete());
        assert!(!log.replay_complete());
    }

    #[test]
    fn trylock_failures_stay_out_of_var_lists() {
        let mut log = EpochLog::new(8);
        log.record_trylock(ThreadId(0), VarId(0), true).unwrap();
        log.record_trylock(ThreadId(1), VarId(0), false).unwrap();
        assert_eq!(log.var(VarId(0)).unwrap().len(), 1);
        assert_eq!(log.thread(ThreadId(1)).unwrap().len(), 1);
        match &log.thread(ThreadId(1)).unwrap().snapshot()[0].kind {
            EventKind::Sync { result, .. } => assert_eq!(*result, 0),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn clear_resets_everything_for_the_next_epoch() {
        let mut log = figure4_log();
        log.clear();
        assert_eq!(log.total_events(), 0);
        assert!(log.var(VarId(1)).unwrap().is_empty());
    }

    #[test]
    fn is_turn_is_false_for_unknown_threads_and_vars() {
        let mut log = figure4_log();
        log.begin_replay();
        assert!(!log.is_turn(ThreadId(9), VarId(1)));
        assert!(!log.is_turn(ThreadId(1), VarId(9)));
        assert!(log.advance(ThreadId(9), VarId(1)).is_none());
    }
}
