//! Per-variable event lists (paper §3.2, Figure 4).
//!
//! Every synchronization variable has a list of the operations performed on
//! it, in acquisition order across all threads.  Together with the
//! per-thread lists this removes the need for a global order: during replay,
//! a thread may perform an operation on a variable only when its entry is at
//! the head of that variable's list.
//!
//! # Lock-free append
//!
//! Appending must not lock: for mutexes the appender already holds the
//! variable (the operation being recorded *is* an acquisition of it), but
//! condition-variable wake-ups can be recorded concurrently by several
//! woken threads, so the list supports multi-writer appends.  An appender
//! reserves a slot with an atomic fetch-add on the tail, then publishes the
//! entry with a release store of the packed word; a slot still holding the
//! `EMPTY` sentinel is simply "not yet published".  Storage grows in
//! doubling chunks so no capacity has to be guessed per variable and chunks
//! are reused across epochs (appends never allocate after the first epoch
//! touches a chunk).
//!
//! Replay never appends, and recording never reads, so readers always
//! observe fully published entries: the epoch-end quiescence barrier
//! (every thread parks through its control mutex before the coordinator
//! flips the phase) orders all record-time stores before any replay-time
//! load.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::event::{SyncOp, ThreadId};

/// One entry of a per-variable list: which thread performed which operation,
/// and where that event sits in the thread's own list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarEntry {
    /// The thread that performed the operation.
    pub thread: ThreadId,
    /// The operation performed.
    pub op: SyncOp,
    /// Index of the corresponding event in the thread's per-thread list.
    pub thread_index: u32,
}

/// Sentinel for a reserved-but-unpublished slot.  A real entry never packs
/// to this value: its op byte would have to be `0xff`, and [`SyncOp::code`]
/// only produces small codes.
const EMPTY: u64 = u64::MAX;

/// Packs an entry into one atomic word: thread id (24 bits) | op code
/// (8 bits) | thread index (32 bits).
fn pack(thread: ThreadId, op: SyncOp, thread_index: u32) -> u64 {
    // A hard assert: a silently truncated id would attribute entries to the
    // wrong thread and corrupt the replay order (one predictable branch on
    // the append path is cheap).
    assert!(thread.0 < (1 << 24), "thread id exceeds the 24-bit pack limit");
    (u64::from(thread.0) << 40) | (u64::from(op.code()) << 32) | u64::from(thread_index)
}

fn unpack(word: u64) -> Option<VarEntry> {
    if word == EMPTY {
        return None;
    }
    Some(VarEntry {
        thread: ThreadId((word >> 40) as u32),
        op: SyncOp::from_code((word >> 32) as u8)?,
        thread_index: word as u32,
    })
}

/// Size of the first chunk; chunk `c` holds `CHUNK0 << c` entries.
const CHUNK0: usize = 64;
/// Number of chunks; total capacity is `CHUNK0 * (2^CHUNKS - 1)` entries.
const CHUNKS: usize = 26;

/// Chunk and offset of entry `index`.
fn locate(index: usize) -> (usize, usize) {
    let chunk = (index / CHUNK0 + 1).ilog2() as usize;
    let offset = index - CHUNK0 * ((1 << chunk) - 1);
    (chunk, offset)
}

/// The ordered list of operations on one synchronization variable, with its
/// replay cursor.
///
/// # Example
///
/// ```
/// use ireplayer_log::{SyncOp, ThreadId, VarList};
///
/// let list = VarList::new();
/// list.append(ThreadId(0), SyncOp::MutexLock, 0);
/// list.append(ThreadId(1), SyncOp::MutexLock, 0);
/// list.begin_replay();
/// assert!(list.is_turn(ThreadId(0)));
/// assert!(!list.is_turn(ThreadId(1)));
/// list.advance();
/// assert!(list.is_turn(ThreadId(1)));
/// ```
#[derive(Default)]
pub struct VarList {
    chunks: [OnceLock<Box<[AtomicU64]>>; CHUNKS],
    /// Number of reserved slots (every slot below it is published once the
    /// appender's store lands; see the module notes on ordering).
    tail: AtomicUsize,
    cursor: AtomicUsize,
}

impl VarList {
    /// Creates an empty per-variable list.
    pub fn new() -> Self {
        VarList::default()
    }

    fn chunk(&self, chunk: usize) -> &[AtomicU64] {
        self.chunks[chunk].get_or_init(|| (0..CHUNK0 << chunk).map(|_| AtomicU64::new(EMPTY)).collect())
    }

    /// Number of recorded operations on this variable.
    pub fn len(&self) -> usize {
        self.tail.load(Ordering::Acquire)
    }

    /// Number of backing chunks this list has allocated so far.  Chunks are
    /// never freed while the list lives -- [`VarList::clear`] keeps them for
    /// the next epoch, and the runtime's warm-relaunch pool keeps them for
    /// the next run -- so a stable count across runs proves the record path
    /// performed no storage allocation.
    pub fn allocated_chunks(&self) -> usize {
        self.chunks.iter().filter(|chunk| chunk.get().is_some()).count()
    }

    /// Returns `true` if no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends an operation during recording: reserves the next slot with a
    /// fetch-add, then publishes the packed entry with a release store.  No
    /// locks; the only blocking is the once-per-chunk allocation.
    pub fn append(&self, thread: ThreadId, op: SyncOp, thread_index: u32) {
        let index = self.tail.fetch_add(1, Ordering::AcqRel);
        let (chunk, offset) = locate(index);
        assert!(chunk < CHUNKS, "per-variable list exceeded its maximum size");
        self.chunk(chunk)[offset].store(pack(thread, op, thread_index), Ordering::Release);
    }

    /// Copy of the entry at `index`, if published.
    pub fn get(&self, index: usize) -> Option<VarEntry> {
        if index >= self.len() {
            return None;
        }
        let (chunk, offset) = locate(index);
        let slot = self.chunks[chunk].get()?;
        unpack(slot[offset].load(Ordering::Acquire))
    }

    /// Clears the list at epoch begin.  Coordinator-only at quiescence (the
    /// chunks stay allocated for reuse by the next epoch).
    pub fn clear(&self) {
        let len = self.len();
        let mut index = 0;
        while index < len {
            let (chunk, offset) = locate(index);
            if let Some(slot) = self.chunks[chunk].get() {
                slot[offset].store(EMPTY, Ordering::Release);
            }
            index += 1;
        }
        self.tail.store(0, Ordering::Release);
        self.cursor.store(0, Ordering::Release);
    }

    /// Resets the replay cursor to the first recorded operation (§3.4).
    /// Coordinator-only at quiescence.
    pub fn begin_replay(&self) {
        self.cursor.store(0, Ordering::Release);
    }

    /// The entry at the head of the list, if any operations remain.
    pub fn peek(&self) -> Option<VarEntry> {
        self.get(self.cursor.load(Ordering::Acquire))
    }

    /// Returns `true` if the next recorded operation on this variable
    /// belongs to `thread` -- the replay rule of §3.5.1: "whenever the first
    /// event of a per-variable list is also the first event of its
    /// corresponding per-thread list, the current thread can proceed".
    pub fn is_turn(&self, thread: ThreadId) -> bool {
        self.peek().is_some_and(|e| e.thread == thread)
    }

    /// Advances the cursor past the head entry and returns it.  Normally
    /// called by the thread whose turn it is (the turn discipline
    /// serializes calls), but the compare-exchange keeps the cursor exact
    /// even if two replaying threads race here: no advance can be lost.
    pub fn advance(&self) -> Option<VarEntry> {
        loop {
            let cursor = self.cursor.load(Ordering::Acquire);
            let entry = self.get(cursor)?;
            if self
                .cursor
                .compare_exchange(cursor, cursor + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(entry);
            }
        }
    }

    /// Index of the next entry to be replayed.
    pub fn cursor(&self) -> usize {
        self.cursor.load(Ordering::Acquire)
    }

    /// Returns `true` when every recorded operation has been replayed.
    pub fn replay_complete(&self) -> bool {
        self.cursor() >= self.len()
    }

    /// Copies the published **prefix** in acquisition order: iteration
    /// stops at the first reserved-but-unpublished slot, so a snapshot
    /// taken while appenders are racing never shifts later entries into a
    /// gap.  (The runtime only snapshots at quiescence, where the prefix is
    /// the whole list.)
    pub fn entries(&self) -> Vec<VarEntry> {
        (0..self.len()).map_while(|i| self.get(i)).collect()
    }

    /// The epoch-close form of [`VarList::entries`]: the published prefix
    /// as one delta/varint-compressed block
    /// ([`crate::compress::compress_var_entries`]).  An uncontended
    /// variable sees one thread's monotone stream of identical operations,
    /// which collapses to a single run frame; the lock-free append path is
    /// untouched.
    pub fn compressed_entries(&self) -> Vec<u8> {
        crate::compress::compress_var_entries(&self.entries())
    }
}

impl Clone for VarList {
    fn clone(&self) -> Self {
        let copy = VarList::new();
        for entry in self.entries() {
            copy.append(entry.thread, entry.op, entry.thread_index);
        }
        copy.cursor.store(self.cursor(), Ordering::Release);
        copy
    }
}

impl std::fmt::Debug for VarList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VarList")
            .field("len", &self.len())
            .field("cursor", &self.cursor())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_cross_thread_acquisition_order() {
        // Figure 3/4 of the paper: lock1 is acquired first by Thread1, then
        // by Thread2.
        let lock1 = VarList::new();
        lock1.append(ThreadId(1), SyncOp::MutexLock, 0);
        lock1.append(ThreadId(2), SyncOp::MutexLock, 2);
        assert_eq!(lock1.len(), 2);
        let entries = lock1.entries();
        assert_eq!(entries[0].thread, ThreadId(1));
        assert_eq!(entries[1].thread, ThreadId(2));
        assert_eq!(entries[1].thread_index, 2);
    }

    #[test]
    fn replay_turn_follows_recorded_order() {
        let list = VarList::new();
        list.append(ThreadId(0), SyncOp::MutexLock, 0);
        list.append(ThreadId(1), SyncOp::MutexLock, 0);
        list.append(ThreadId(0), SyncOp::MutexLock, 1);
        list.begin_replay();

        assert!(list.is_turn(ThreadId(0)));
        assert!(!list.is_turn(ThreadId(1)));
        let first = list.advance().unwrap();
        assert_eq!(first.thread, ThreadId(0));

        assert!(list.is_turn(ThreadId(1)));
        list.advance();
        assert!(list.is_turn(ThreadId(0)));
        list.advance();
        assert!(list.replay_complete());
        assert!(!list.is_turn(ThreadId(0)));
        assert!(list.advance().is_none());
    }

    #[test]
    fn clear_resets_entries_and_cursor() {
        let list = VarList::new();
        list.append(ThreadId(0), SyncOp::BarrierWait, 0);
        list.begin_replay();
        list.advance();
        list.clear();
        assert!(list.is_empty());
        assert_eq!(list.cursor(), 0);
        assert!(list.peek().is_none());
    }

    #[test]
    fn begin_replay_rewinds_after_partial_replay() {
        let list = VarList::new();
        list.append(ThreadId(0), SyncOp::MutexLock, 0);
        list.append(ThreadId(1), SyncOp::MutexLock, 0);
        list.begin_replay();
        list.advance();
        assert_eq!(list.cursor(), 1);
        // A divergence triggers another rollback: cursors rewind.
        list.begin_replay();
        assert_eq!(list.cursor(), 0);
        assert!(list.is_turn(ThreadId(0)));
    }

    #[test]
    fn entries_round_trip_through_the_packed_word() {
        let list = VarList::new();
        list.append(ThreadId(0xabcd), SyncOp::CondWake, u32::MAX);
        let entry = list.get(0).unwrap();
        assert_eq!(entry.thread, ThreadId(0xabcd));
        assert_eq!(entry.op, SyncOp::CondWake);
        assert_eq!(entry.thread_index, u32::MAX);
    }

    #[test]
    fn growth_crosses_chunk_boundaries_and_survives_clear() {
        let list = VarList::new();
        let n = CHUNK0 * 7 + 13; // spans three chunks
        for i in 0..n {
            list.append(ThreadId((i % 5) as u32), SyncOp::MutexLock, i as u32);
        }
        assert_eq!(list.len(), n);
        for i in 0..n {
            let e = list.get(i).unwrap();
            assert_eq!(e.thread_index, i as u32);
            assert_eq!(e.thread, ThreadId((i % 5) as u32));
        }
        list.clear();
        assert!(list.is_empty());
        // Chunks are reused: appends after a clear land at index zero again.
        list.append(ThreadId(9), SyncOp::MutexLock, 42);
        assert_eq!(list.get(0).unwrap().thread_index, 42);
        assert_eq!(list.len(), 1);
    }

    /// Multi-writer appends: every reserved slot ends up published exactly
    /// once, with no entry lost or duplicated.
    #[test]
    fn concurrent_appends_publish_every_entry() {
        let list = Arc::new(VarList::new());
        let threads = 8;
        let per_thread = 1000u32;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let list = Arc::clone(&list);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        list.append(ThreadId(t), SyncOp::CondWake, i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let entries = list.entries();
        assert_eq!(entries.len(), threads as usize * per_thread as usize);
        // Per-thread order is preserved and nothing is lost.
        for t in 0..threads {
            let indices: Vec<u32> = entries
                .iter()
                .filter(|e| e.thread == ThreadId(t))
                .map(|e| e.thread_index)
                .collect();
            assert_eq!(indices, (0..per_thread).collect::<Vec<_>>());
        }
    }

    #[test]
    fn locate_maps_indices_into_doubling_chunks() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(CHUNK0 - 1), (0, CHUNK0 - 1));
        assert_eq!(locate(CHUNK0), (1, 0));
        assert_eq!(locate(CHUNK0 * 3 - 1), (1, CHUNK0 * 2 - 1));
        assert_eq!(locate(CHUNK0 * 3), (2, 0));
    }
}
