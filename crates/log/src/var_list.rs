//! Per-variable event lists (paper §3.2, Figure 4).
//!
//! Every synchronization variable has a list of the operations performed on
//! it, in acquisition order across all threads.  Together with the
//! per-thread lists this removes the need for a global order: during replay,
//! a thread may perform an operation on a variable only when its entry is at
//! the head of that variable's list.

use serde::{Deserialize, Serialize};

use crate::event::{SyncOp, ThreadId};

/// One entry of a per-variable list: which thread performed which operation,
/// and where that event sits in the thread's own list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VarEntry {
    /// The thread that performed the operation.
    pub thread: ThreadId,
    /// The operation performed.
    pub op: SyncOp,
    /// Index of the corresponding event in the thread's per-thread list.
    pub thread_index: u32,
}

/// The ordered list of operations on one synchronization variable, with its
/// replay cursor.
///
/// # Example
///
/// ```
/// use ireplayer_log::{SyncOp, ThreadId, VarList};
///
/// let mut list = VarList::new();
/// list.append(ThreadId(0), SyncOp::MutexLock, 0);
/// list.append(ThreadId(1), SyncOp::MutexLock, 0);
/// list.begin_replay();
/// assert!(list.is_turn(ThreadId(0)));
/// assert!(!list.is_turn(ThreadId(1)));
/// list.advance();
/// assert!(list.is_turn(ThreadId(1)));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VarList {
    entries: Vec<VarEntry>,
    cursor: usize,
}

impl VarList {
    /// Creates an empty per-variable list.
    pub fn new() -> Self {
        VarList::default()
    }

    /// Number of recorded operations on this variable.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an operation during recording.
    ///
    /// The caller holds the variable's own lock (the operation being
    /// recorded *is* an acquisition of it), so no extra synchronization is
    /// introduced.
    pub fn append(&mut self, thread: ThreadId, op: SyncOp, thread_index: u32) {
        self.entries.push(VarEntry {
            thread,
            op,
            thread_index,
        });
    }

    /// Clears the list at epoch begin.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.cursor = 0;
    }

    /// Resets the replay cursor to the first recorded operation (§3.4).
    pub fn begin_replay(&mut self) {
        self.cursor = 0;
    }

    /// The entry at the head of the list, if any operations remain.
    pub fn peek(&self) -> Option<&VarEntry> {
        self.entries.get(self.cursor)
    }

    /// Returns `true` if the next recorded operation on this variable
    /// belongs to `thread` -- the replay rule of §3.5.1: "whenever the first
    /// event of a per-variable list is also the first event of its
    /// corresponding per-thread list, the current thread can proceed".
    pub fn is_turn(&self, thread: ThreadId) -> bool {
        self.peek().is_some_and(|e| e.thread == thread)
    }

    /// Advances the cursor past the head entry and returns it.
    pub fn advance(&mut self) -> Option<VarEntry> {
        let entry = self.entries.get(self.cursor).copied();
        if entry.is_some() {
            self.cursor += 1;
        }
        entry
    }

    /// Index of the next entry to be replayed.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Returns `true` when every recorded operation has been replayed.
    pub fn replay_complete(&self) -> bool {
        self.cursor >= self.entries.len()
    }

    /// All recorded entries in acquisition order.
    pub fn entries(&self) -> &[VarEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_cross_thread_acquisition_order() {
        // Figure 3/4 of the paper: lock1 is acquired first by Thread1, then
        // by Thread2.
        let mut lock1 = VarList::new();
        lock1.append(ThreadId(1), SyncOp::MutexLock, 0);
        lock1.append(ThreadId(2), SyncOp::MutexLock, 2);
        assert_eq!(lock1.len(), 2);
        assert_eq!(lock1.entries()[0].thread, ThreadId(1));
        assert_eq!(lock1.entries()[1].thread, ThreadId(2));
        assert_eq!(lock1.entries()[1].thread_index, 2);
    }

    #[test]
    fn replay_turn_follows_recorded_order() {
        let mut list = VarList::new();
        list.append(ThreadId(0), SyncOp::MutexLock, 0);
        list.append(ThreadId(1), SyncOp::MutexLock, 0);
        list.append(ThreadId(0), SyncOp::MutexLock, 1);
        list.begin_replay();

        assert!(list.is_turn(ThreadId(0)));
        assert!(!list.is_turn(ThreadId(1)));
        let first = list.advance().unwrap();
        assert_eq!(first.thread, ThreadId(0));

        assert!(list.is_turn(ThreadId(1)));
        list.advance();
        assert!(list.is_turn(ThreadId(0)));
        list.advance();
        assert!(list.replay_complete());
        assert!(!list.is_turn(ThreadId(0)));
        assert!(list.advance().is_none());
    }

    #[test]
    fn clear_resets_entries_and_cursor() {
        let mut list = VarList::new();
        list.append(ThreadId(0), SyncOp::BarrierWait, 0);
        list.begin_replay();
        list.advance();
        list.clear();
        assert!(list.is_empty());
        assert_eq!(list.cursor(), 0);
        assert!(list.peek().is_none());
    }

    #[test]
    fn begin_replay_rewinds_after_partial_replay() {
        let mut list = VarList::new();
        list.append(ThreadId(0), SyncOp::MutexLock, 0);
        list.append(ThreadId(1), SyncOp::MutexLock, 0);
        list.begin_replay();
        list.advance();
        assert_eq!(list.cursor(), 1);
        // A divergence triggers another rollback: cursors rewind.
        list.begin_replay();
        assert_eq!(list.cursor(), 0);
        assert!(list.is_turn(ThreadId(0)));
    }
}
