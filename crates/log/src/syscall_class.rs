//! System-call classification (paper §2.2.3).
//!
//! iReplayer classifies system calls into five categories that determine how
//! each call is handled during recording and replay.  The classification of
//! *concrete* calls (which may depend on their parameters, e.g. `fcntl`)
//! lives with the simulated OS in `ireplayer-sys`; this module defines the
//! categories and their handling policy.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The five system-call categories of §2.2.3 and how each is treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyscallClass {
    /// Always returns the same result in the in-situ setting (e.g.
    /// `getpid`).  Not recorded; executed normally in both phases.
    Repeatable,
    /// Would return different results if re-invoked (e.g. `gettimeofday`,
    /// socket reads/writes).  The result is recorded and returned during
    /// replay without re-invoking the call.
    Recordable,
    /// Modifies system state whose effects can be reproduced if the initial
    /// state is recovered first (file reads/writes).  Not recorded; the file
    /// position is checkpointed at epoch begin and the call is re-issued
    /// during replay.
    Revocable,
    /// Irrevocably changes system state but can be safely delayed until the
    /// next epoch (e.g. `close`, `munmap`).
    Deferrable,
    /// Irrevocably changes system state and cannot be delayed (e.g. `fork`,
    /// `execve`, repositioning `lseek`).  Ends the current epoch before
    /// executing.
    Irrevocable,
}

impl SyscallClass {
    /// Returns `true` if the call's result must be stored in the event log.
    pub fn needs_recording(self) -> bool {
        matches!(self, SyscallClass::Recordable)
    }

    /// Returns `true` if the call must be re-issued (rather than skipped or
    /// served from the log) during a re-execution.
    pub fn reissued_in_replay(self) -> bool {
        matches!(self, SyscallClass::Repeatable | SyscallClass::Revocable)
    }

    /// Returns `true` if the call's execution is postponed to the next epoch
    /// boundary.
    pub fn deferred(self) -> bool {
        matches!(self, SyscallClass::Deferrable)
    }

    /// Returns `true` if encountering the call closes the current epoch.
    pub fn closes_epoch(self) -> bool {
        matches!(self, SyscallClass::Irrevocable)
    }
}

impl fmt::Display for SyscallClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SyscallClass::Repeatable => "repeatable",
            SyscallClass::Recordable => "recordable",
            SyscallClass::Revocable => "revocable",
            SyscallClass::Deferrable => "deferrable",
            SyscallClass::Irrevocable => "irrevocable",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_flags_match_the_paper() {
        use SyscallClass::*;
        // Only recordable calls store results.
        assert!(Recordable.needs_recording());
        for c in [Repeatable, Revocable, Deferrable, Irrevocable] {
            assert!(!c.needs_recording(), "{c} should not be recorded");
        }
        // Repeatable and revocable calls are re-executed during replay.
        assert!(Repeatable.reissued_in_replay());
        assert!(Revocable.reissued_in_replay());
        assert!(!Recordable.reissued_in_replay());
        // Only deferrable calls are postponed.
        assert!(Deferrable.deferred());
        for c in [Repeatable, Recordable, Revocable, Irrevocable] {
            assert!(!c.deferred(), "{c} should not be deferred");
        }
        // Only irrevocable calls close the epoch.
        assert!(Irrevocable.closes_epoch());
        for c in [Repeatable, Recordable, Revocable, Deferrable] {
            assert!(!c.closes_epoch(), "{c} should not close the epoch");
        }
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(SyscallClass::Repeatable.to_string(), "repeatable");
        assert_eq!(SyscallClass::Irrevocable.to_string(), "irrevocable");
    }

    /// Every class round-trips through the recorder: the event recorded for
    /// a call of that class (a full outcome for recordable calls, a marker
    /// for the others) is handed back unchanged by the replay cursor, and
    /// the class recovered from the recorded code drives the same policy.
    #[test]
    fn every_class_round_trips_through_the_recorder() {
        use crate::event::{EventKind, SyscallOutcome, ThreadId};
        use crate::recorder::EpochLog;

        const ALL: [SyscallClass; 5] = [
            SyscallClass::Repeatable,
            SyscallClass::Recordable,
            SyscallClass::Revocable,
            SyscallClass::Deferrable,
            SyscallClass::Irrevocable,
        ];
        // The test's call table: one representative code per class.
        let code_of = |class: SyscallClass| ALL.iter().position(|c| *c == class).unwrap() as u16;
        let class_of = |code: u16| ALL[usize::from(code)];
        let outcome_of = |class: SyscallClass| {
            if class.needs_recording() {
                // Recordable calls log their full result, data included.
                SyscallOutcome::with_data(42, vec![0xAB, 0xCD])
            } else {
                // The other classes log only a marker for divergence checks.
                SyscallOutcome::default()
            }
        };

        let thread = ThreadId(0);
        let mut log = EpochLog::new(16);
        for class in ALL {
            log.record_syscall(thread, code_of(class), outcome_of(class)).unwrap();
        }

        log.begin_replay();
        let list = log.thread(thread).unwrap();
        assert_eq!(list.len(), ALL.len());
        for (event, expected) in list.snapshot().into_iter().zip(ALL) {
            let EventKind::Syscall { code, outcome } = event.kind else {
                panic!("recorded a non-syscall event for {expected}");
            };
            let recovered = class_of(code);
            assert_eq!(recovered, expected, "class survives the round trip");
            assert_eq!(
                outcome,
                outcome_of(expected),
                "{expected} outcome survives the round trip"
            );
            // The recovered class drives the same record/replay policy.
            assert_eq!(recovered.needs_recording(), expected.needs_recording());
            assert_eq!(recovered.reissued_in_replay(), expected.reissued_in_replay());
            assert_eq!(recovered.deferred(), expected.deferred());
            assert_eq!(recovered.closes_epoch(), expected.closes_epoch());
        }
        assert!(!log.replay_complete());
    }
}
