//! Event recording data structures for the iReplayer runtime.
//!
//! This crate implements the paper's "novel data structure" for tracking
//! synchronization and system-call events (§3.2, Figures 3 and 4):
//!
//! * every event is appended to the **per-thread list** of the thread that
//!   performed it, preserving program order within a thread;
//! * synchronization events are additionally appended to the **per-variable
//!   list** of the synchronization variable involved, preserving the order
//!   of operations on that variable across threads;
//! * system calls appear only in per-thread lists (their cross-thread order
//!   is irrelevant for replay);
//! * there is **no global order**, no offline reconstruction, and no
//!   hardware timestamping -- replay proceeds whenever a thread's next
//!   per-thread event is also at the head of its per-variable list.
//!
//! The crate also provides the replay cursors used to drive re-execution,
//! the divergence descriptors produced when a re-execution departs from the
//! recorded order (caused only by unrecorded data races, §3.5.2), and the
//! system-call classification of §2.2.3.
//!
//! The structures here are **lock-free on the record path** -- one of the
//! main reasons the paper's recording overhead is ~3%.  A per-thread list is
//! a single-writer structure: only its owning thread appends, publishing
//! each event through an atomic length, and readers (the coordinator, replay
//! checks) observe a consistent prefix.  A per-variable list supports
//! multi-writer appends (condition-variable wake-ups can be recorded
//! concurrently) by reserving a slot with an atomic fetch-add and publishing
//! a packed entry word.  The full write/read discipline -- who may touch
//! which list, and when -- is documented on [`ThreadList`] and [`VarList`].

pub mod compress;
pub mod divergence;
pub mod event;
pub mod lookup;
pub mod recorder;
pub mod syscall_class;
pub mod thread_list;
pub mod var_list;
pub mod wire;

pub use divergence::{Divergence, DivergenceKind};
pub use event::{Event, EventKind, SyncOp, SyscallOutcome, ThreadId, VarId};
pub use lookup::{HashDirectory, ShadowDirectory, SyncAddr, SyncSlot, SyncVarDirectory, UnknownSyncVar};
pub use recorder::EpochLog;
pub use syscall_class::SyscallClass;
pub use thread_list::{ThreadList, ThreadListFull};
pub use var_list::{VarEntry, VarList};
