//! Delta/varint compression of epoch order logs.
//!
//! [`crate::wire`] defines the fixed-width encoding of one [`Event`] /
//! [`VarEntry`]; at ~22 bytes per sync event it is the dominant constant
//! factor in trace size.  This module defines the compressed *block*
//! encoding used by trace-format version 3: a whole per-thread or
//! per-variable log is encoded as a sequence of frames, where each frame
//! covers a *run* of events whose fields repeat and whose indices advance
//! by one.  Order logs are extremely regular -- a thread's indices are
//! consecutive by construction, an uncontended variable sees one thread's
//! monotone stream of identical operations -- so the common frame is a few
//! bytes for many events.
//!
//! All multi-byte integers are LEB128 varints; deltas are zigzag-encoded
//! signed varints against a running predictor (previous thread, expected
//! next index, previous var/result/code).  Compression happens at epoch
//! close and trace framing only: the hot append path ([`crate::ThreadList`],
//! [`crate::VarList`]) never sees these functions.
//!
//! # Frame layout
//!
//! An event block is `uvarint event_count` followed by frames.  The frame
//! tag byte packs the frame kind into the high nibble and the [`SyncOp`]
//! code into the low nibble:
//!
//! ```text
//! sync run   tag = 0x1k (k = op code)
//!            uvarint run_len          events covered (>= 1)
//!            svarint d_thread         thread - prev_thread
//!            svarint d_index          first_index - expected_index
//!            svarint d_var            var - prev_var
//!            svarint d_result         result - prev_result (wrapping)
//! syscall    tag = 0x20
//!            svarint d_thread
//!            svarint d_index
//!            svarint d_code           code - prev_code
//!            svarint d_ret            ret - prev_ret (wrapping)
//!            uvarint data_len + raw payload bytes
//! ```
//!
//! A sync run covers consecutive events on one thread with consecutive
//! indices and identical `(var, op, result)`.  A var-entry block is the
//! same idea with one frame kind: `tag = 0x1k`, `uvarint run_len`,
//! `svarint d_thread`, `svarint d_index`, covering entries with one
//! thread, one op, and consecutive `thread_index`.
//!
//! Decoders are total: truncated input, unknown tags, run indices that
//! leave `u32` range, or varints past 64 bits all yield [`WireError`].

use crate::event::{Event, EventKind, SyncOp, SyscallOutcome, ThreadId, VarId};
use crate::var_list::VarEntry;
use crate::wire::{Reader, WireError};

/// Frame kind (high nibble of the tag byte): a run of sync events or var
/// entries.
const FRAME_RUN: u8 = 1;
/// Frame kind: a single syscall event with its payload.
const FRAME_SYSCALL: u8 = 2;

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

/// Appends an LEB128 unsigned varint (1 byte for values < 128).
pub fn put_uvarint(buf: &mut Vec<u8>, mut value: u64) {
    while value >= 0x80 {
        buf.push((value as u8) | 0x80);
        value >>= 7;
    }
    buf.push(value as u8);
}

/// Reads an LEB128 unsigned varint.
///
/// # Errors
///
/// Returns [`WireError`] on truncation or a varint wider than 64 bits.
pub fn read_uvarint(reader: &mut Reader<'_>, context: &'static str) -> Result<u64, WireError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = reader.u8(context)?;
        let payload = u64::from(byte & 0x7f);
        if shift >= 63 && payload > 1 {
            return Err(WireError { context });
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(WireError { context });
        }
    }
}

/// Appends a zigzag-encoded signed varint (small magnitudes stay short).
pub fn put_svarint(buf: &mut Vec<u8>, value: i64) {
    put_uvarint(buf, ((value << 1) ^ (value >> 63)) as u64);
}

/// Reads a zigzag-encoded signed varint.
///
/// # Errors
///
/// Returns [`WireError`] on truncation or a varint wider than 64 bits.
pub fn read_svarint(reader: &mut Reader<'_>, context: &'static str) -> Result<i64, WireError> {
    let raw = read_uvarint(reader, context)?;
    Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
}

fn delta_u32(value: u32, prev: i64) -> i64 {
    i64::from(value) - prev
}

fn apply_u32(prev: i64, delta: i64, context: &'static str) -> Result<u32, WireError> {
    prev.checked_add(delta)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or(WireError { context })
}

// ---------------------------------------------------------------------------
// Event blocks
// ---------------------------------------------------------------------------

/// Running predictor state shared by the event encoder and decoder.
#[derive(Default)]
struct EventState {
    prev_thread: i64,
    /// Index the next event is expected to carry (previous index + 1).
    expected_index: i64,
    prev_var: i64,
    prev_result: i64,
    prev_code: i64,
    prev_ret: i64,
}

/// Length of the run of events starting at `events[0]` that one sync frame
/// can cover: same thread, same `(var, op, result)`, consecutive indices.
fn sync_run_len(events: &[Event]) -> usize {
    let first = &events[0];
    events
        .iter()
        .enumerate()
        .take_while(|(offset, event)| {
            event.thread == first.thread
                && event.index == first.index.wrapping_add(*offset as u32)
                && event.kind == first.kind
        })
        .count()
}

/// Compresses a per-thread order log into one self-delimiting block.
pub fn compress_events(events: &[Event]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_uvarint(&mut buf, events.len() as u64);
    let mut state = EventState::default();
    let mut rest = events;
    while let Some(first) = rest.first() {
        match &first.kind {
            EventKind::Sync { var, op, result } => {
                let run = sync_run_len(rest);
                buf.push((FRAME_RUN << 4) | op.code());
                put_uvarint(&mut buf, run as u64);
                put_svarint(&mut buf, delta_u32(first.thread.0, state.prev_thread));
                put_svarint(&mut buf, i64::from(first.index) - state.expected_index);
                put_svarint(&mut buf, delta_u32(var.0, state.prev_var));
                put_svarint(&mut buf, result.wrapping_sub(state.prev_result));
                state.prev_thread = i64::from(first.thread.0);
                state.expected_index = i64::from(first.index) + run as i64;
                state.prev_var = i64::from(var.0);
                state.prev_result = *result;
                rest = &rest[run..];
            }
            EventKind::Syscall { code, outcome } => {
                buf.push(FRAME_SYSCALL << 4);
                put_svarint(&mut buf, delta_u32(first.thread.0, state.prev_thread));
                put_svarint(&mut buf, i64::from(first.index) - state.expected_index);
                put_svarint(&mut buf, i64::from(*code) - state.prev_code);
                put_svarint(&mut buf, outcome.ret.wrapping_sub(state.prev_ret));
                put_uvarint(&mut buf, outcome.data.len() as u64);
                buf.extend_from_slice(&outcome.data);
                state.prev_thread = i64::from(first.thread.0);
                state.expected_index = i64::from(first.index) + 1;
                state.prev_code = i64::from(*code);
                state.prev_ret = outcome.ret;
                rest = &rest[1..];
            }
        }
    }
    buf
}

/// Decodes one event block written by [`compress_events`].
///
/// # Errors
///
/// Returns [`WireError`] on truncation, an unknown frame tag or op code, or
/// reconstructed ids/indices outside `u32` range.
pub fn decompress_events(reader: &mut Reader<'_>) -> Result<Vec<Event>, WireError> {
    let count = read_uvarint(reader, "event block count")?;
    let mut events = Vec::new();
    let mut state = EventState::default();
    while (events.len() as u64) < count {
        let tag = reader.u8("event frame tag")?;
        match tag >> 4 {
            FRAME_RUN => {
                let op = SyncOp::from_code(tag & 0x0f).ok_or(WireError {
                    context: "sync frame op code",
                })?;
                let run = read_uvarint(reader, "sync frame run length")?;
                if run == 0 || run > count - events.len() as u64 {
                    return Err(WireError {
                        context: "sync frame run length",
                    });
                }
                let thread = apply_u32(
                    state.prev_thread,
                    read_svarint(reader, "sync frame thread delta")?,
                    "sync frame thread delta",
                )?;
                let first_index = apply_u32(
                    state.expected_index,
                    read_svarint(reader, "sync frame index delta")?,
                    "sync frame index delta",
                )?;
                // Every index in the run must stay a valid u32.
                let last_index = u64::from(first_index)
                    .checked_add(run - 1)
                    .filter(|last| *last <= u64::from(u32::MAX))
                    .ok_or(WireError {
                        context: "sync frame run length",
                    })?;
                let var = apply_u32(
                    state.prev_var,
                    read_svarint(reader, "sync frame var delta")?,
                    "sync frame var delta",
                )?;
                let result = state
                    .prev_result
                    .wrapping_add(read_svarint(reader, "sync frame result delta")?);
                for offset in 0..run {
                    events.push(Event {
                        thread: ThreadId(thread),
                        index: first_index + offset as u32,
                        kind: EventKind::Sync {
                            var: VarId(var),
                            op,
                            result,
                        },
                    });
                }
                state.prev_thread = i64::from(thread);
                state.expected_index = last_index as i64 + 1;
                state.prev_var = i64::from(var);
                state.prev_result = result;
            }
            FRAME_SYSCALL => {
                let thread = apply_u32(
                    state.prev_thread,
                    read_svarint(reader, "syscall frame thread delta")?,
                    "syscall frame thread delta",
                )?;
                let index = apply_u32(
                    state.expected_index,
                    read_svarint(reader, "syscall frame index delta")?,
                    "syscall frame index delta",
                )?;
                let code = state
                    .prev_code
                    .checked_add(read_svarint(reader, "syscall frame code delta")?)
                    .and_then(|v| u16::try_from(v).ok())
                    .ok_or(WireError {
                        context: "syscall frame code delta",
                    })?;
                let ret = state
                    .prev_ret
                    .wrapping_add(read_svarint(reader, "syscall frame ret delta")?);
                let len = read_uvarint(reader, "syscall frame data length")?;
                let len = usize::try_from(len)
                    .ok()
                    .filter(|n| *n <= reader.remaining())
                    .ok_or(WireError {
                        context: "syscall frame data length",
                    })?;
                let data = reader.bytes(len, "syscall frame data")?.to_vec();
                events.push(Event {
                    thread: ThreadId(thread),
                    index,
                    kind: EventKind::Syscall {
                        code,
                        outcome: SyscallOutcome { ret, data },
                    },
                });
                state.prev_thread = i64::from(thread);
                state.expected_index = i64::from(index) + 1;
                state.prev_code = i64::from(code);
                state.prev_ret = ret;
            }
            _ => {
                return Err(WireError {
                    context: "event frame tag",
                })
            }
        }
    }
    Ok(events)
}

// ---------------------------------------------------------------------------
// Var-entry blocks
// ---------------------------------------------------------------------------

/// Length of the run of entries starting at `entries[0]` that one frame can
/// cover: same thread, same op, consecutive `thread_index`.
fn var_run_len(entries: &[VarEntry]) -> usize {
    let first = &entries[0];
    entries
        .iter()
        .enumerate()
        .take_while(|(offset, entry)| {
            entry.thread == first.thread
                && entry.op == first.op
                && entry.thread_index == first.thread_index.wrapping_add(*offset as u32)
        })
        .count()
}

/// Compresses a per-variable order log into one self-delimiting block.
pub fn compress_var_entries(entries: &[VarEntry]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_uvarint(&mut buf, entries.len() as u64);
    let mut prev_thread = 0i64;
    let mut expected_index = 0i64;
    let mut rest = entries;
    while let Some(first) = rest.first() {
        let run = var_run_len(rest);
        buf.push((FRAME_RUN << 4) | first.op.code());
        put_uvarint(&mut buf, run as u64);
        put_svarint(&mut buf, delta_u32(first.thread.0, prev_thread));
        put_svarint(&mut buf, i64::from(first.thread_index) - expected_index);
        prev_thread = i64::from(first.thread.0);
        expected_index = i64::from(first.thread_index) + run as i64;
        rest = &rest[run..];
    }
    buf
}

/// Decodes one var-entry block written by [`compress_var_entries`].
///
/// # Errors
///
/// Returns [`WireError`] on truncation, an unknown frame tag or op code, or
/// reconstructed ids/indices outside `u32` range.
pub fn decompress_var_entries(reader: &mut Reader<'_>) -> Result<Vec<VarEntry>, WireError> {
    let count = read_uvarint(reader, "var block count")?;
    let mut entries = Vec::new();
    let mut prev_thread = 0i64;
    let mut expected_index = 0i64;
    while (entries.len() as u64) < count {
        let tag = reader.u8("var frame tag")?;
        if tag >> 4 != FRAME_RUN {
            return Err(WireError {
                context: "var frame tag",
            });
        }
        let op = SyncOp::from_code(tag & 0x0f).ok_or(WireError {
            context: "var frame op code",
        })?;
        let run = read_uvarint(reader, "var frame run length")?;
        if run == 0 || run > count - entries.len() as u64 {
            return Err(WireError {
                context: "var frame run length",
            });
        }
        let thread = apply_u32(
            prev_thread,
            read_svarint(reader, "var frame thread delta")?,
            "var frame thread delta",
        )?;
        let first_index = apply_u32(
            expected_index,
            read_svarint(reader, "var frame index delta")?,
            "var frame index delta",
        )?;
        let last_index = u64::from(first_index)
            .checked_add(run - 1)
            .filter(|last| *last <= u64::from(u32::MAX))
            .ok_or(WireError {
                context: "var frame run length",
            })?;
        for offset in 0..run {
            entries.push(VarEntry {
                thread: ThreadId(thread),
                op,
                thread_index: first_index + offset as u32,
            });
        }
        prev_thread = i64::from(thread);
        expected_index = last_index as i64 + 1;
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sync(thread: u32, index: u32, var: u32, op: SyncOp, result: i64) -> Event {
        Event {
            thread: ThreadId(thread),
            index,
            kind: EventKind::Sync {
                var: VarId(var),
                op,
                result,
            },
        }
    }

    fn syscall(thread: u32, index: u32, code: u16, ret: i64, data: Vec<u8>) -> Event {
        Event {
            thread: ThreadId(thread),
            index,
            kind: EventKind::Syscall {
                code,
                outcome: SyscallOutcome { ret, data },
            },
        }
    }

    fn roundtrip_events(events: &[Event]) -> Vec<Event> {
        let block = compress_events(events);
        let mut reader = Reader::new(&block);
        let decoded = decompress_events(&mut reader).unwrap();
        assert_eq!(reader.remaining(), 0, "block is self-delimiting");
        decoded
    }

    #[test]
    fn varints_roundtrip_across_the_whole_range() {
        for value in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, value);
            assert_eq!(read_uvarint(&mut Reader::new(&buf), "t").unwrap(), value);
        }
        for value in [0i64, 1, -1, 63, -64, 8_192, -8_192, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            put_svarint(&mut buf, value);
            assert_eq!(read_svarint(&mut Reader::new(&buf), "t").unwrap(), value);
        }
    }

    #[test]
    fn overlong_varints_are_rejected() {
        // Eleven continuation bytes overflow the 64-bit range.
        let bad = [0xffu8; 11];
        assert!(read_uvarint(&mut Reader::new(&bad), "t").is_err());
        // Ten bytes whose final payload exceeds the remaining bit.
        let bad = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        assert!(read_uvarint(&mut Reader::new(&bad), "t").is_err());
        // u64::MAX itself still decodes.
        let mut buf = Vec::new();
        put_uvarint(&mut buf, u64::MAX);
        assert_eq!(read_uvarint(&mut Reader::new(&buf), "t").unwrap(), u64::MAX);
    }

    #[test]
    fn empty_logs_compress_to_one_byte() {
        assert_eq!(compress_events(&[]), vec![0]);
        assert_eq!(compress_var_entries(&[]), vec![0]);
        assert!(roundtrip_events(&[]).is_empty());
    }

    #[test]
    fn uncontended_runs_collapse_to_single_frames() {
        let events: Vec<Event> = (0..1000).map(|i| sync(3, i, 7, SyncOp::MutexLock, 0)).collect();
        let block = compress_events(&events);
        // One frame: count + tag + run + four deltas, all short varints.
        assert!(block.len() < 12, "got {} bytes", block.len());
        assert_eq!(roundtrip_events(&events), events);
    }

    #[test]
    fn mixed_logs_roundtrip_exactly() {
        let events = vec![
            sync(0, 0, 1, SyncOp::MutexLock, 0),
            sync(0, 1, 1, SyncOp::MutexLock, 0),
            sync(0, 2, 9, SyncOp::BarrierWait, 1),
            syscall(0, 3, 14, -2, vec![1, 2, 3, 255]),
            syscall(0, 4, 14, 1024, Vec::new()),
            sync(5, 0, 1, SyncOp::MutexTryLock, 1),
            sync(0, 5, 1, SyncOp::ThreadJoin, 5),
        ];
        assert_eq!(roundtrip_events(&events), events);
    }

    #[test]
    fn max_delta_jumps_roundtrip() {
        let events = vec![
            sync(u32::MAX, u32::MAX, u32::MAX, SyncOp::VarRegister, i64::MAX),
            sync(0, 0, 0, SyncOp::MutexLock, i64::MIN),
            syscall(u32::MAX, 1, u16::MAX, i64::MIN, vec![0; 3]),
        ];
        assert_eq!(roundtrip_events(&events), events);
    }

    #[test]
    fn var_entries_roundtrip_and_compress_runs() {
        let mut entries: Vec<VarEntry> = (0..300)
            .map(|i| VarEntry {
                thread: ThreadId(2),
                op: SyncOp::MutexLock,
                thread_index: 10 + i,
            })
            .collect();
        let block = compress_var_entries(&entries);
        assert!(block.len() < 8, "got {} bytes", block.len());

        entries.push(VarEntry {
            thread: ThreadId(0),
            op: SyncOp::CondWake,
            thread_index: u32::MAX,
        });
        let block = compress_var_entries(&entries);
        let mut reader = Reader::new(&block);
        assert_eq!(decompress_var_entries(&mut reader).unwrap(), entries);
        assert_eq!(reader.remaining(), 0);
    }

    #[test]
    fn truncated_and_corrupted_blocks_error_without_panicking() {
        let events = vec![sync(0, 0, 1, SyncOp::MutexLock, 0), syscall(0, 1, 14, 7, vec![9, 9])];
        let block = compress_events(&events);
        for cut in 0..block.len() {
            assert!(
                decompress_events(&mut Reader::new(&block[..cut])).is_err(),
                "cut at {cut} must not decode"
            );
        }
        // Unknown frame kind.
        let bad = [1u8, 0xf0];
        assert!(decompress_events(&mut Reader::new(&bad)).is_err());
        // Unknown op code inside a run frame.
        let bad = [1u8, 0x1f];
        assert!(decompress_events(&mut Reader::new(&bad)).is_err());
        // Run longer than the block's declared event count.
        let mut bad = Vec::new();
        put_uvarint(&mut bad, 1);
        bad.push(0x10);
        put_uvarint(&mut bad, 2);
        assert!(decompress_events(&mut Reader::new(&bad)).is_err());
        // Zero-length run.
        let mut bad = Vec::new();
        put_uvarint(&mut bad, 1);
        bad.push(0x10);
        put_uvarint(&mut bad, 0);
        assert!(decompress_events(&mut Reader::new(&bad)).is_err());
        // Index walks out of u32 range mid-run.
        let huge = vec![sync(0, u32::MAX, 0, SyncOp::MutexLock, 0)];
        let mut block = compress_events(&huge);
        block[0] = 2; // claim two events so the run could extend
        let mut tampered = block.clone();
        tampered[2] = 2; // run length 2: indices u32::MAX, u32::MAX + 1
        assert!(decompress_events(&mut Reader::new(&tampered)).is_err());
    }

    #[test]
    fn compressed_blocks_beat_the_fixed_width_encoding() {
        // The record_path bench's workload shape: every fourth event hits
        // the shared variable, the rest a per-thread one.
        let events: Vec<Event> = (0..4096)
            .map(|i| {
                let var = if i % 4 == 0 { 0 } else { 11 };
                sync(3, i, var, SyncOp::MutexLock, 0)
            })
            .collect();
        let mut packed = Vec::new();
        for event in &events {
            crate::wire::put_event(&mut packed, event).unwrap();
        }
        let compressed = compress_events(&events);
        assert!(
            packed.len() >= compressed.len() * 4,
            "packed {} vs compressed {}",
            packed.len(),
            compressed.len()
        );
        assert_eq!(roundtrip_events(&events), events);
    }
}
