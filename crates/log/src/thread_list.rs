//! Per-thread event lists (paper §3.2, Figure 4).
//!
//! Each thread records its synchronization and system-call events into its
//! own pre-allocated list.  Pre-allocation means recording performs no
//! memory allocation; when the list is full, the runtime closes the current
//! epoch ("when all entries are exhausted, it is time to stop the current
//! epoch and start a new epoch").

use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind, ThreadId};

/// Error returned when a per-thread list has exhausted its pre-allocated
/// entries; the runtime reacts by closing the epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadListFull {
    /// The thread whose list filled up.
    pub thread: ThreadId,
    /// The configured capacity.
    pub capacity: usize,
}

impl std::fmt::Display for ThreadListFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "per-thread event list of {} is full ({} entries)",
            self.thread, self.capacity
        )
    }
}

impl std::error::Error for ThreadListFull {}

/// The per-thread event list with its replay cursor.
///
/// During recording, events are appended.  During replay, the cursor walks
/// the list: a thread may perform its next operation only if it matches the
/// event under the cursor (divergence otherwise), and recorded results are
/// returned from the event under the cursor.
///
/// # Example
///
/// ```
/// use ireplayer_log::{EventKind, SyncOp, ThreadId, ThreadList, VarId};
///
/// let mut list = ThreadList::new(ThreadId(1), 16);
/// list.append(EventKind::Sync { var: VarId(0), op: SyncOp::MutexLock, result: 0 }).unwrap();
/// list.begin_replay();
/// assert!(list.peek().is_some());
/// list.advance();
/// assert!(list.peek().is_none());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreadList {
    thread: ThreadId,
    capacity: usize,
    events: Vec<Event>,
    cursor: usize,
    replaying: bool,
}

impl ThreadList {
    /// Creates an empty list for `thread` with room for `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(thread: ThreadId, capacity: usize) -> Self {
        assert!(capacity > 0, "per-thread list capacity must be non-zero");
        ThreadList {
            thread,
            capacity,
            events: Vec::with_capacity(capacity),
            cursor: 0,
            replaying: false,
        }
    }

    /// The thread this list belongs to.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Remaining capacity before the epoch must end.
    pub fn remaining(&self) -> usize {
        self.capacity.saturating_sub(self.events.len())
    }

    /// Returns `true` if the list cannot accept further events.
    pub fn is_full(&self) -> bool {
        self.events.len() >= self.capacity
    }

    /// Appends an event during the recording phase and returns its index
    /// within this list.
    ///
    /// # Errors
    ///
    /// Returns [`ThreadListFull`] when the pre-allocated entries are
    /// exhausted; the caller must close the epoch.
    pub fn append(&mut self, kind: EventKind) -> Result<u32, ThreadListFull> {
        if self.is_full() {
            return Err(ThreadListFull {
                thread: self.thread,
                capacity: self.capacity,
            });
        }
        let index = self.events.len() as u32;
        self.events.push(Event {
            thread: self.thread,
            index,
            kind,
        });
        Ok(index)
    }

    /// Appends an event even when the pre-allocated entries are exhausted.
    ///
    /// The runtime uses this after [`ThreadList::append`] reported the list
    /// full and an epoch end has already been scheduled: the event that
    /// tripped the limit must still be recorded so that the epoch remains
    /// replayable, at the cost of one allocation past the reserved capacity.
    pub fn append_past_capacity(&mut self, kind: EventKind) -> u32 {
        let index = self.events.len() as u32;
        self.events.push(Event {
            thread: self.thread,
            index,
            kind,
        });
        index
    }

    /// Clears all recorded events and leaves recording mode.  Called by
    /// epoch housekeeping at every epoch begin (§3.1).
    pub fn clear(&mut self) {
        self.events.clear();
        self.cursor = 0;
        self.replaying = false;
    }

    /// Resets the replay cursor to the first recorded event (rollback,
    /// §3.4) and enters replay mode.
    pub fn begin_replay(&mut self) {
        self.cursor = 0;
        self.replaying = true;
    }

    /// Leaves replay mode (the re-execution reached the epoch end).
    pub fn end_replay(&mut self) {
        self.replaying = false;
    }

    /// Returns `true` while the list is driving a replay.
    pub fn is_replaying(&self) -> bool {
        self.replaying
    }

    /// The event the cursor points at, or `None` when the recorded events
    /// are exhausted (the thread has replayed its whole epoch).
    pub fn peek(&self) -> Option<&Event> {
        self.events.get(self.cursor)
    }

    /// Advances the cursor past the current event and returns it, or `None`
    /// if every recorded event has already been replayed.
    pub fn advance(&mut self) -> Option<&Event> {
        if self.cursor < self.events.len() {
            let index = self.cursor;
            self.cursor += 1;
            self.events.get(index)
        } else {
            None
        }
    }

    /// Index of the next event to be replayed.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Returns `true` when every recorded event has been replayed.
    pub fn replay_complete(&self) -> bool {
        self.cursor >= self.events.len()
    }

    /// All recorded events, in program order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SyncOp, SyscallOutcome, VarId};

    fn lock_event(var: u32) -> EventKind {
        EventKind::Sync {
            var: VarId(var),
            op: SyncOp::MutexLock,
            result: 0,
        }
    }

    #[test]
    fn append_preserves_program_order_and_indices() {
        let mut list = ThreadList::new(ThreadId(2), 8);
        assert_eq!(list.append(lock_event(1)).unwrap(), 0);
        assert_eq!(
            list.append(EventKind::Syscall {
                code: 4,
                outcome: SyscallOutcome::ret(10),
            })
            .unwrap(),
            1
        );
        assert_eq!(list.append(lock_event(2)).unwrap(), 2);
        assert_eq!(list.len(), 3);
        assert_eq!(list.remaining(), 5);
        assert_eq!(list.events()[1].index, 1);
        assert_eq!(list.events()[1].thread, ThreadId(2));
    }

    #[test]
    fn exhausting_capacity_reports_full() {
        let mut list = ThreadList::new(ThreadId(0), 2);
        list.append(lock_event(1)).unwrap();
        list.append(lock_event(1)).unwrap();
        assert!(list.is_full());
        let err = list.append(lock_event(1)).unwrap_err();
        assert_eq!(err.capacity, 2);
        assert_eq!(err.thread, ThreadId(0));
        assert!(!err.to_string().is_empty());
        // The runtime can still force the event in once an epoch end has
        // been scheduled.
        let index = list.append_past_capacity(lock_event(1));
        assert_eq!(index, 2);
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn replay_cursor_walks_the_recorded_events() {
        let mut list = ThreadList::new(ThreadId(0), 8);
        list.append(lock_event(1)).unwrap();
        list.append(lock_event(2)).unwrap();
        assert!(!list.is_replaying());

        list.begin_replay();
        assert!(list.is_replaying());
        assert!(!list.replay_complete());
        assert_eq!(list.peek().unwrap().kind, lock_event(1));
        assert_eq!(list.advance().unwrap().kind, lock_event(1));
        assert_eq!(list.cursor(), 1);
        assert_eq!(list.peek().unwrap().kind, lock_event(2));
        list.advance();
        assert!(list.replay_complete());
        assert!(list.peek().is_none());
        assert!(list.advance().is_none());
        list.end_replay();
        assert!(!list.is_replaying());
    }

    #[test]
    fn clear_discards_events_and_cursor() {
        let mut list = ThreadList::new(ThreadId(0), 4);
        list.append(lock_event(1)).unwrap();
        list.begin_replay();
        list.advance();
        list.clear();
        assert!(list.is_empty());
        assert_eq!(list.cursor(), 0);
        assert!(!list.is_replaying());
        assert_eq!(list.remaining(), 4);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_is_rejected() {
        let _ = ThreadList::new(ThreadId(0), 0);
    }
}
