//! Per-thread event lists (paper §3.2, Figure 4).
//!
//! Each thread records its synchronization and system-call events into its
//! own pre-allocated list.  Pre-allocation means recording performs no
//! memory allocation; when the list is full, the runtime closes the current
//! epoch ("when all entries are exhausted, it is time to stop the current
//! epoch and start a new epoch").
//!
//! # Single-writer discipline
//!
//! The list is a **single-writer** structure: the paper's ~3% record
//! overhead rests on each thread appending only to its own list, so the
//! append path must not acquire any lock.  The rules, enforced by the
//! runtime and documented here because the type's safety rests on them:
//!
//! * **Owner appends.**  Only the owning thread calls [`ThreadList::append`]
//!   / [`ThreadList::append_past_capacity`], and only during recording.  An
//!   append writes the slot at the unpublished index `len`, then publishes
//!   it with a release store of `len + 1`.
//! * **Anyone reads the published prefix.**  Readers (the coordinator
//!   checking `replay_complete`, divergence reporting, snapshots) load `len`
//!   with acquire ordering and may then read any slot below it; published
//!   slots are immutable until the next [`ThreadList::clear`].
//! * **The coordinator resets at quiescence.**  [`ThreadList::clear`],
//!   [`ThreadList::begin_replay`] and [`ThreadList::end_replay`] are called
//!   only by the coordinator while every application thread is parked at a
//!   step boundary (§3.3); the park/release handshake goes through each
//!   thread's control mutex, which provides the happens-before edges that
//!   make the reset visible to the owner.
//! * **The owner replays its own cursor.**  During replay only the owning
//!   thread calls [`ThreadList::peek`] / [`ThreadList::advance`]; other
//!   threads may read [`ThreadList::cursor`] and
//!   [`ThreadList::replay_complete`] concurrently.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::event::{Event, EventKind, ThreadId};

/// Error returned when a per-thread list has exhausted its pre-allocated
/// entries; the runtime reacts by closing the epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadListFull {
    /// The thread whose list filled up.
    pub thread: ThreadId,
    /// The configured capacity.
    pub capacity: usize,
}

impl std::fmt::Display for ThreadListFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "per-thread event list of {} is full ({} entries)",
            self.thread, self.capacity
        )
    }
}

impl std::error::Error for ThreadListFull {}

/// One pre-allocated entry of the list.
///
/// The cell starts as `None`; the owning thread writes `Some(event)` into
/// the slot at the unpublished index before publishing it through the
/// atomic length, after which the slot is immutable until the coordinator
/// clears the list at quiescence.
struct Slot(UnsafeCell<Option<Event>>);

impl Slot {
    fn empty() -> Self {
        Slot(UnsafeCell::new(None))
    }
}

// SAFETY: slots are only written at indices >= the published length (by the
// sole owner thread, or by the coordinator during the quiescent reset) and
// only read at indices below the published length, which is maintained with
// release/acquire ordering; see the module-level discipline notes.
#[allow(unsafe_code)]
unsafe impl Sync for Slot {}

// SAFETY: a Slot is plain owned data (`Option<Event>`); sending it between
// threads moves the cell contents like any other value.
#[allow(unsafe_code)]
unsafe impl Send for Slot {}

/// The per-thread event list with its replay cursor.
///
/// During recording, the owning thread appends events lock-free.  During
/// replay, the cursor walks the list: a thread may perform its next
/// operation only if it matches the event under the cursor (divergence
/// otherwise), and recorded results are returned from the event under the
/// cursor.
///
/// # Example
///
/// ```
/// use ireplayer_log::{EventKind, SyncOp, ThreadId, ThreadList, VarId};
///
/// let mut list = ThreadList::new(ThreadId(1), 16);
/// list.append_mut(EventKind::Sync { var: VarId(0), op: SyncOp::MutexLock, result: 0 }).unwrap();
/// list.begin_replay();
/// assert!(list.peek().is_some());
/// list.advance();
/// assert!(list.peek().is_none());
/// ```
pub struct ThreadList {
    thread: ThreadId,
    capacity: usize,
    slots: Box<[Slot]>,
    /// Number of published (fully initialized) slots.
    len: AtomicUsize,
    /// Spill storage for events recorded after the pre-allocated entries
    /// were exhausted (an epoch end is already scheduled at that point, so
    /// this path is cold and may allocate and lock).
    overflow: Mutex<Vec<Event>>,
    /// Published length of `overflow`, so `len()` stays lock-free.
    spilled: AtomicUsize,
    cursor: AtomicUsize,
    replaying: AtomicBool,
}

impl ThreadList {
    /// Creates an empty list for `thread` with room for `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(thread: ThreadId, capacity: usize) -> Self {
        assert!(capacity > 0, "per-thread list capacity must be non-zero");
        ThreadList {
            thread,
            capacity,
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            len: AtomicUsize::new(0),
            overflow: Mutex::new(Vec::new()),
            spilled: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            replaying: AtomicBool::new(false),
        }
    }

    /// The thread this list belongs to.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The number of pre-allocated entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears the list and re-binds it to `thread`, reusing the backing
    /// slot storage.  The runtime's warm-relaunch path recycles retired
    /// lists through this method so that back-to-back runs perform no
    /// per-thread log allocation (`&mut` proves exclusive access, so no
    /// single-writer contract is involved).
    pub fn reset_for(&mut self, thread: ThreadId) {
        self.clear_mut();
        self.thread = thread;
    }

    /// Number of recorded events (published prefix plus spilled entries).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire) + self.spilled.load(Ordering::Acquire)
    }

    /// Returns `true` if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remaining capacity before the epoch must end.
    pub fn remaining(&self) -> usize {
        self.capacity.saturating_sub(self.len())
    }

    /// Returns `true` if the list cannot accept further events.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Appends an event during the recording phase and returns its index
    /// within this list.  The uncontended fast path performs one relaxed
    /// load, one slot write, and one release store -- no locks.
    ///
    /// # Safety
    ///
    /// The caller must be the list's sole appender (the owning thread, or
    /// a context that otherwise excludes concurrent appends), and no
    /// [`ThreadList::clear`] may run concurrently.  Violating this races
    /// the non-atomic slot write -- the single-writer discipline in the
    /// module notes is the soundness contract, not just a convention.
    /// Callers with `&mut` access can use the safe
    /// [`ThreadList::append_mut`] instead.
    #[allow(unsafe_code)]
    pub unsafe fn append(&self, kind: EventKind) -> Result<u32, ThreadListFull> {
        // Relaxed is enough: this thread is the only writer of `len`
        // outside the quiescent resets, which are ordered by the runtime's
        // park/release handshake.
        let len = self.len.load(Ordering::Relaxed);
        if len >= self.capacity {
            return Err(ThreadListFull {
                thread: self.thread,
                capacity: self.capacity,
            });
        }
        let index = len as u32;
        // SAFETY: `len` is unpublished (readers only access indices below
        // the published length) and this thread is the sole appender, so no
        // other thread can be reading or writing this slot.
        #[allow(unsafe_code)]
        unsafe {
            *self.slots[len].0.get() = Some(Event {
                thread: self.thread,
                index,
                kind,
            });
        }
        self.len.store(len + 1, Ordering::Release);
        Ok(index)
    }

    /// Appends an event even when the pre-allocated entries are exhausted.
    ///
    /// The runtime uses this after [`ThreadList::append`] reported the list
    /// full and an epoch end has already been scheduled: the event that
    /// tripped the limit must still be recorded so that the epoch remains
    /// replayable, at the cost of one allocation (and one lock -- the path
    /// is cold by construction) past the reserved capacity.
    ///
    /// # Safety
    ///
    /// Same contract as [`ThreadList::append`]: sole appender, no
    /// concurrent [`ThreadList::clear`].  (The spill vector itself is
    /// mutex-guarded; the contract keeps the published index arithmetic
    /// race-free with respect to appends and clears.)
    #[allow(unsafe_code)]
    pub unsafe fn append_past_capacity(&self, kind: EventKind) -> u32 {
        let mut overflow = self.overflow.lock();
        let index = (self.capacity + overflow.len()) as u32;
        overflow.push(Event {
            thread: self.thread,
            index,
            kind,
        });
        self.spilled.store(overflow.len(), Ordering::Release);
        index
    }

    /// Returns a copy of the event at `index`, if it has been published.
    pub fn get(&self, index: usize) -> Option<Event> {
        let len = self.len.load(Ordering::Acquire);
        if index < len {
            // SAFETY: the slot is below the published length, so it was
            // fully written before the release store that published it (we
            // read `len` with acquire) and is immutable until the next
            // quiescent clear.
            #[allow(unsafe_code)]
            let event = unsafe { (*self.slots[index].0.get()).clone() };
            return event;
        }
        if index >= self.capacity {
            return self.overflow.lock().get(index - self.capacity).cloned();
        }
        None
    }

    /// Copies all recorded events, in program order.
    pub fn snapshot(&self) -> Vec<Event> {
        let len = self.len.load(Ordering::Acquire);
        let mut events: Vec<Event> = (0..len).filter_map(|i| self.get(i)).collect();
        events.extend(self.overflow.lock().iter().cloned());
        events
    }

    /// The epoch-close form of [`ThreadList::snapshot`]: the recorded
    /// events as one delta/varint-compressed block
    /// ([`crate::compress::compress_events`]).  A thread's indices are
    /// consecutive by construction, so an uncontended stretch collapses to
    /// a few bytes regardless of length.  The append path is untouched --
    /// compression reads the same published prefix a snapshot would.
    pub fn compressed_log(&self) -> Vec<u8> {
        crate::compress::compress_events(&self.snapshot())
    }

    /// Safe owner-side append: `&mut` proves exclusive access, which is a
    /// superset of the single-writer contract.  Single-owner users
    /// ([`crate::EpochLog`], tests) use this.
    ///
    /// # Errors
    ///
    /// Returns [`ThreadListFull`] when the pre-allocated entries are
    /// exhausted.
    pub fn append_mut(&mut self, kind: EventKind) -> Result<u32, ThreadListFull> {
        // SAFETY: `&mut self` excludes every other reader and writer.
        #[allow(unsafe_code)]
        unsafe {
            self.append(kind)
        }
    }

    /// Safe owner-side variant of [`ThreadList::append_past_capacity`].
    pub fn append_past_capacity_mut(&mut self, kind: EventKind) -> u32 {
        // SAFETY: `&mut self` excludes every other reader and writer.
        #[allow(unsafe_code)]
        unsafe {
            self.append_past_capacity(kind)
        }
    }

    /// Clears all recorded events and leaves recording mode.  Called by
    /// epoch housekeeping at every epoch begin (§3.1).
    ///
    /// # Safety
    ///
    /// No append, read, or replay access may run concurrently: the runtime
    /// calls this only from the coordinator at step-boundary quiescence,
    /// after the park handshake ordered every owner thread's accesses
    /// before it.  Callers with `&mut` access can use the safe
    /// [`ThreadList::clear_mut`] instead.
    #[allow(unsafe_code)]
    pub unsafe fn clear(&self) {
        let len = self.len.load(Ordering::Acquire);
        for slot in self.slots.iter().take(len) {
            // SAFETY: coordinator-only at quiescence -- the owner thread is
            // parked (the park handshake happened-before this call) and no
            // reader runs concurrently, so the cells can be reset in place.
            #[allow(unsafe_code)]
            unsafe {
                *slot.0.get() = None;
            }
        }
        self.len.store(0, Ordering::Release);
        self.overflow.lock().clear();
        self.spilled.store(0, Ordering::Release);
        self.cursor.store(0, Ordering::Release);
        self.replaying.store(false, Ordering::Release);
    }

    /// Safe owner-side variant of [`ThreadList::clear`].
    pub fn clear_mut(&mut self) {
        // SAFETY: `&mut self` excludes every other reader and writer.
        #[allow(unsafe_code)]
        unsafe {
            self.clear()
        }
    }

    /// Resets the replay cursor to the first recorded event (rollback,
    /// §3.4) and enters replay mode.  Coordinator-only at quiescence (only
    /// atomics are touched, so this is safe; calling it while the owner is
    /// mid-replay is a logic error, not a data race).
    pub fn begin_replay(&self) {
        self.cursor.store(0, Ordering::Release);
        self.replaying.store(true, Ordering::Release);
    }

    /// Leaves replay mode (the re-execution reached the epoch end).
    /// Coordinator-only at quiescence.
    pub fn end_replay(&self) {
        self.replaying.store(false, Ordering::Release);
    }

    /// Returns `true` while the list is driving a replay.
    pub fn is_replaying(&self) -> bool {
        self.replaying.load(Ordering::Acquire)
    }

    /// Returns a copy of the event the cursor points at, or `None` when the
    /// recorded events are exhausted (the thread has replayed its whole
    /// epoch).
    pub fn peek(&self) -> Option<Event> {
        self.get(self.cursor.load(Ordering::Acquire))
    }

    /// Advances the cursor past the current event and returns a copy of it,
    /// or `None` if every recorded event has already been replayed.
    /// Owner-thread only during replay.
    pub fn advance(&self) -> Option<Event> {
        let cursor = self.cursor.load(Ordering::Acquire);
        let event = self.get(cursor)?;
        self.cursor.store(cursor + 1, Ordering::Release);
        Some(event)
    }

    /// Advances the cursor without copying the event out, returning `false`
    /// if every recorded event has already been replayed.  The replay path
    /// uses this after it has already inspected the event via
    /// [`ThreadList::peek`], so the advance costs no clone.
    pub fn skip(&self) -> bool {
        let cursor = self.cursor.load(Ordering::Acquire);
        if cursor >= self.len() {
            return false;
        }
        self.cursor.store(cursor + 1, Ordering::Release);
        true
    }

    /// Index of the next event to be replayed.
    pub fn cursor(&self) -> usize {
        self.cursor.load(Ordering::Acquire)
    }

    /// Returns `true` when every recorded event has been replayed.
    pub fn replay_complete(&self) -> bool {
        self.cursor() >= self.len()
    }
}

impl Clone for ThreadList {
    fn clone(&self) -> Self {
        let mut copy = ThreadList::new(self.thread, self.capacity);
        for event in self.snapshot() {
            if copy.append_mut(event.kind.clone()).is_err() {
                copy.append_past_capacity_mut(event.kind);
            }
        }
        copy.cursor.store(self.cursor(), Ordering::Release);
        copy.replaying.store(self.is_replaying(), Ordering::Release);
        copy
    }
}

impl std::fmt::Debug for ThreadList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadList")
            .field("thread", &self.thread)
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("cursor", &self.cursor())
            .field("replaying", &self.is_replaying())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SyncOp, SyscallOutcome, VarId};
    use std::sync::Arc;

    fn lock_event(var: u32) -> EventKind {
        EventKind::Sync {
            var: VarId(var),
            op: SyncOp::MutexLock,
            result: 0,
        }
    }

    #[test]
    fn append_preserves_program_order_and_indices() {
        let mut list = ThreadList::new(ThreadId(2), 8);
        assert_eq!(list.append_mut(lock_event(1)).unwrap(), 0);
        assert_eq!(
            list.append_mut(EventKind::Syscall {
                code: 4,
                outcome: SyscallOutcome::ret(10),
            })
            .unwrap(),
            1
        );
        assert_eq!(list.append_mut(lock_event(2)).unwrap(), 2);
        assert_eq!(list.len(), 3);
        assert_eq!(list.remaining(), 5);
        let events = list.snapshot();
        assert_eq!(events[1].index, 1);
        assert_eq!(events[1].thread, ThreadId(2));
    }

    #[test]
    fn exhausting_capacity_reports_full() {
        let mut list = ThreadList::new(ThreadId(0), 2);
        list.append_mut(lock_event(1)).unwrap();
        list.append_mut(lock_event(1)).unwrap();
        assert!(list.is_full());
        let err = list.append_mut(lock_event(1)).unwrap_err();
        assert_eq!(err.capacity, 2);
        assert_eq!(err.thread, ThreadId(0));
        assert!(!err.to_string().is_empty());
        // The runtime can still force the event in once an epoch end has
        // been scheduled.
        let index = list.append_past_capacity_mut(lock_event(1));
        assert_eq!(index, 2);
        assert_eq!(list.len(), 3);
        assert_eq!(list.get(2).unwrap().kind, lock_event(1));
        assert_eq!(list.snapshot().len(), 3);
    }

    #[test]
    fn replay_cursor_walks_the_recorded_events() {
        let mut list = ThreadList::new(ThreadId(0), 8);
        list.append_mut(lock_event(1)).unwrap();
        list.append_mut(lock_event(2)).unwrap();
        assert!(!list.is_replaying());

        list.begin_replay();
        assert!(list.is_replaying());
        assert!(!list.replay_complete());
        assert_eq!(list.peek().unwrap().kind, lock_event(1));
        assert_eq!(list.advance().unwrap().kind, lock_event(1));
        assert_eq!(list.cursor(), 1);
        assert_eq!(list.peek().unwrap().kind, lock_event(2));
        list.advance();
        assert!(list.replay_complete());
        assert!(list.peek().is_none());
        assert!(list.advance().is_none());
        list.end_replay();
        assert!(!list.is_replaying());
    }

    #[test]
    fn clear_discards_events_and_cursor() {
        let mut list = ThreadList::new(ThreadId(0), 4);
        list.append_mut(lock_event(1)).unwrap();
        list.begin_replay();
        list.advance();
        list.clear_mut();
        assert!(list.is_empty());
        assert_eq!(list.cursor(), 0);
        assert!(!list.is_replaying());
        assert_eq!(list.remaining(), 4);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_is_rejected() {
        let _ = ThreadList::new(ThreadId(0), 0);
    }

    #[test]
    fn clone_copies_events_and_cursor() {
        let mut list = ThreadList::new(ThreadId(3), 4);
        list.append_mut(lock_event(1)).unwrap();
        list.append_mut(lock_event(2)).unwrap();
        list.begin_replay();
        list.advance();
        let copy = list.clone();
        assert_eq!(copy.len(), 2);
        assert_eq!(copy.cursor(), 1);
        assert!(copy.is_replaying());
        assert_eq!(copy.peek().unwrap().kind, lock_event(2));
    }

    /// A reader never observes a torn or unpublished event: whatever length
    /// it loads, every event below it is fully initialized and carries the
    /// expected payload.
    #[test]
    fn concurrent_reader_sees_a_consistent_prefix() {
        let list = Arc::new(ThreadList::new(ThreadId(7), 4096));
        let writer = {
            let list = Arc::clone(&list);
            std::thread::spawn(move || {
                for i in 0..4096u32 {
                    // SAFETY: this spawned thread is the sole appender and
                    // nothing clears the list while it runs.
                    #[allow(unsafe_code)]
                    unsafe {
                        list.append(EventKind::Sync {
                            var: VarId(i),
                            op: SyncOp::MutexLock,
                            result: i64::from(i),
                        })
                        .unwrap();
                    }
                }
            })
        };
        // Concurrent snapshots: every published event must be the one the
        // writer wrote at that index.
        loop {
            let events = list.snapshot();
            for (i, event) in events.iter().enumerate() {
                assert_eq!(event.index as usize, i);
                assert_eq!(event.thread, ThreadId(7));
                match &event.kind {
                    EventKind::Sync { var, result, .. } => {
                        assert_eq!(var.0 as usize, i);
                        assert_eq!(*result, i as i64);
                    }
                    other => panic!("unexpected event {other:?}"),
                }
            }
            if events.len() == 4096 {
                break;
            }
        }
        writer.join().unwrap();
        assert_eq!(list.len(), 4096);
    }
}
