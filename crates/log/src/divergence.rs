//! Divergence descriptors (paper §3.5.2).
//!
//! During re-execution iReplayer checks, before every synchronization and
//! system call, that the operation the thread is about to perform matches
//! the next recorded event in its per-thread list.  When all explicit
//! synchronizations and system calls are replayed faithfully, any mismatch
//! can only be caused by an unrecorded data race; the runtime reacts by
//! immediately rolling back and starting another re-execution, optionally
//! inserting random delays at the diverging point.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::event::{EventKind, ThreadId};

/// The ways a re-execution can depart from the recorded schedule.
///
/// Marked `#[non_exhaustive]`: new divergence classes may be added as the
/// runtime learns to detect more unrecorded effects, and downstream matches
/// must keep a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DivergenceKind {
    /// The thread attempted an operation that differs from the next recorded
    /// event (different variable, operation, or syscall).
    WrongOperation {
        /// The event the log expected next.
        expected: EventKind,
        /// The operation the re-execution attempted.
        actual: EventKind,
    },
    /// The thread attempted an operation but its recorded list was already
    /// exhausted -- the re-execution performs *more* work than the original.
    ExtraOperation {
        /// The operation the re-execution attempted.
        actual: EventKind,
    },
    /// The thread reached the epoch end with recorded events still pending
    /// -- the re-execution performs *less* work than the original.
    MissingOperations {
        /// Number of recorded events that were never replayed.
        remaining: usize,
    },
    /// An operation named a synchronization object that was never
    /// registered (see [`crate::lookup::UnknownSyncVar`]): the analogue of
    /// using an uninitialized `pthread_mutex_t`.  Surfaced as a divergence
    /// so the runtime reports it instead of unwinding through user code.
    UnknownVariable {
        /// The unregistered address the operation presented.
        addr: u64,
    },
}

impl From<crate::lookup::UnknownSyncVar> for DivergenceKind {
    fn from(err: crate::lookup::UnknownSyncVar) -> Self {
        DivergenceKind::UnknownVariable { addr: err.addr.0 }
    }
}

/// A divergence observed by one thread during a re-execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Divergence {
    /// Thread that observed the divergence.
    pub thread: ThreadId,
    /// Position in the thread's per-thread list where it occurred.
    pub at_index: usize,
    /// Replay attempt (1-based) during which the divergence was observed.
    pub attempt: u32,
    /// What went wrong.
    pub kind: DivergenceKind,
}

impl Divergence {
    /// Returns `true` if the divergence happened on the very first recorded
    /// event of the thread, which the replay engine treats as a hint to
    /// insert a start-up delay for this thread on the next attempt.
    pub fn at_start(&self) -> bool {
        self.at_index == 0
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            DivergenceKind::WrongOperation { expected, actual } => write!(
                f,
                "{} diverged at event {} (attempt {}): expected {expected}, attempted {actual}",
                self.thread, self.at_index, self.attempt
            ),
            DivergenceKind::ExtraOperation { actual } => write!(
                f,
                "{} diverged at event {} (attempt {}): attempted {actual} beyond the recorded log",
                self.thread, self.at_index, self.attempt
            ),
            DivergenceKind::MissingOperations { remaining } => write!(
                f,
                "{} reached epoch end at event {} (attempt {}) with {remaining} recorded events unreplayed",
                self.thread, self.at_index, self.attempt
            ),
            DivergenceKind::UnknownVariable { addr } => write!(
                f,
                "{} diverged at event {} (attempt {}): operation on unregistered synchronization object {addr:#x}",
                self.thread, self.at_index, self.attempt
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SyncOp, SyscallOutcome, VarId};

    fn lock(var: u32) -> EventKind {
        EventKind::Sync {
            var: VarId(var),
            op: SyncOp::MutexLock,
            result: 0,
        }
    }

    #[test]
    fn display_names_the_thread_and_attempt() {
        let d = Divergence {
            thread: ThreadId(3),
            at_index: 5,
            attempt: 2,
            kind: DivergenceKind::WrongOperation {
                expected: lock(1),
                actual: lock(2),
            },
        };
        let text = d.to_string();
        assert!(text.contains("T3"));
        assert!(text.contains("attempt 2"));
        assert!(text.contains("V1"));
        assert!(text.contains("V2"));
    }

    #[test]
    fn extra_and_missing_variants_format() {
        let extra = Divergence {
            thread: ThreadId(0),
            at_index: 9,
            attempt: 1,
            kind: DivergenceKind::ExtraOperation {
                actual: EventKind::Syscall {
                    code: 11,
                    outcome: SyscallOutcome::ret(0),
                },
            },
        };
        assert!(extra.to_string().contains("beyond the recorded log"));
        let missing = Divergence {
            thread: ThreadId(0),
            at_index: 4,
            attempt: 1,
            kind: DivergenceKind::MissingOperations { remaining: 3 },
        };
        assert!(missing.to_string().contains("3 recorded events"));
    }

    #[test]
    fn at_start_detects_index_zero() {
        let d = Divergence {
            thread: ThreadId(1),
            at_index: 0,
            attempt: 1,
            kind: DivergenceKind::MissingOperations { remaining: 1 },
        };
        assert!(d.at_start());
        let later = Divergence { at_index: 3, ..d };
        assert!(!later.at_start());
    }
}
