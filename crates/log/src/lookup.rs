//! Synchronization-variable lookup strategies (paper §3.2, second bullet).
//!
//! Every recorded synchronization operation must find the per-variable list
//! of the synchronization object it touches.  The paper reports that the
//! naive approach -- a global hash table keyed by the object's address --
//! imposed up to 4x overhead on applications with very many synchronization
//! variables (fluidanimate), because it is hard to size the table and to
//! find a balanced hash.  iReplayer instead allocates a *shadow object* per
//! synchronization variable and stores a pointer to it in the first word of
//! the original object, so the per-variable list is reached in a couple of
//! dereferences ("a level of indirection", à la SyncPerf).
//!
//! This module models both strategies behind one trait so the design choice
//! can be measured in isolation: [`ShadowDirectory`] is the paper's
//! indirection, [`HashDirectory`] is the rejected global hash table.  The
//! `ablation_lookup` Criterion bench in `ireplayer-bench` sweeps the number
//! of variables and reproduces the crossover the paper describes.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::{SyncOp, ThreadId, VarId};
use crate::var_list::VarList;

/// A handle the "application" keeps for one of its synchronization
/// variables.  It plays the role of the original object's address: the only
/// piece of information an interposed `pthread_mutex_lock` call has in hand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyncAddr(pub u64);

/// Error returned when an operation names a synchronization object that was
/// never registered -- the analogue of using an uninitialized
/// `pthread_mutex_t`.  The runtime surfaces this as a divergence-grade
/// diagnostic instead of unwinding through user code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownSyncVar {
    /// The address the application presented.
    pub addr: SyncAddr,
}

impl std::fmt::Display for UnknownSyncVar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "synchronization object {:#x} was never registered", self.addr.0)
    }
}

impl std::error::Error for UnknownSyncVar {}

/// A registered synchronization variable: its identifier and its
/// per-variable list.  The list appends lock-free (see
/// [`VarList::append`]), so holding a slot gives a contention-free record
/// path.
#[derive(Debug)]
pub struct SyncSlot {
    /// Identifier assigned at registration.
    pub id: VarId,
    /// The per-variable list of recorded operations.
    pub list: VarList,
}

impl SyncSlot {
    fn new(id: VarId) -> Arc<Self> {
        Arc::new(SyncSlot {
            id,
            list: VarList::new(),
        })
    }
}

/// A directory that maps application synchronization objects to their
/// per-variable lists.
///
/// Both implementations are thread-safe; `register` is called once per
/// variable (under the runtime's creation lock), `slot` is called on every
/// synchronization operation and is the hot path this ablation measures.
pub trait SyncVarDirectory: Send + Sync {
    /// Human-readable strategy name, used in bench output.
    fn strategy(&self) -> &'static str;

    /// Registers the synchronization object at `addr` and returns the
    /// token the application stores (the shadow pointer / nothing but the
    /// address itself for the hash table).
    fn register(&self, addr: SyncAddr) -> VarId;

    /// Finds the slot for a previously registered object.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSyncVar`] if `addr` was never registered; the
    /// caller (the runtime) reports it as a divergence-grade fault rather
    /// than panicking through application frames.
    fn slot(&self, addr: SyncAddr) -> Result<Arc<SyncSlot>, UnknownSyncVar>;

    /// Convenience used by the bench: record one operation on `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSyncVar`] if `addr` was never registered.
    fn record(&self, addr: SyncAddr, thread: ThreadId, op: SyncOp, thread_index: u32) -> Result<(), UnknownSyncVar> {
        let slot = self.slot(addr)?;
        slot.list.append(thread, op, thread_index);
        Ok(())
    }

    /// Number of registered variables.
    fn len(&self) -> usize;

    /// Returns `true` if no variables are registered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Shadow-object indirection (the paper's design).
// ---------------------------------------------------------------------------

/// The paper's design: registration allocates a shadow slot and publishes
/// its index through the first word of the original object.  This type
/// models that first word with a dense side table indexed by the low bits
/// of the address token handed back to the application, so a lookup is one
/// bounds-checked index plus one pointer dereference -- the same cost
/// profile as the original's two dereferences.
#[derive(Debug, Default)]
pub struct ShadowDirectory {
    /// Slot storage; the "first word" of object `i` holds `i`.
    slots: Mutex<Vec<Arc<SyncSlot>>>,
}

impl ShadowDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        ShadowDirectory::default()
    }
}

impl SyncVarDirectory for ShadowDirectory {
    fn strategy(&self) -> &'static str {
        "shadow-indirection"
    }

    fn register(&self, _addr: SyncAddr) -> VarId {
        let mut slots = self.slots.lock();
        let id = VarId(slots.len() as u32);
        slots.push(SyncSlot::new(id));
        id
    }

    fn slot(&self, addr: SyncAddr) -> Result<Arc<SyncSlot>, UnknownSyncVar> {
        // The address token *is* the shadow index for registered objects:
        // the application stored it in the object's first word at
        // registration time.
        let slots = self.slots.lock();
        slots.get(addr.0 as usize).cloned().ok_or(UnknownSyncVar { addr })
    }

    fn len(&self) -> usize {
        self.slots.lock().len()
    }
}

// ---------------------------------------------------------------------------
// Global hash table (the rejected design).
// ---------------------------------------------------------------------------

/// The rejected design: a global chained hash table keyed by the object's
/// address.  The bucket count is fixed up front (the paper: "it is
/// difficult to define the size of the hash table"), so applications with
/// very many synchronization variables degrade to long chain walks under a
/// lock -- the effect the paper measured at up to 4x on fluidanimate.
#[derive(Debug)]
pub struct HashDirectory {
    buckets: Vec<Mutex<BucketChain>>,
    /// Identifier source.  An atomic (not a mutex) so that an id can never
    /// be observed out of order with respect to its bucket insertion: the
    /// fetch-add hands out the id and the bucket lock alone publishes the
    /// slot.
    count: AtomicU32,
}

/// One hash chain: the registered variables whose address hashes to the
/// bucket, walked under the bucket's lock.
type BucketChain = Vec<(SyncAddr, Arc<SyncSlot>)>;

impl HashDirectory {
    /// Creates a directory with `buckets` chains (rounded up to at least
    /// one).  The default used by the ablation bench is 64, a plausible
    /// guess for "how many mutexes does a program have".
    pub fn with_buckets(buckets: usize) -> Self {
        let buckets = buckets.max(1);
        HashDirectory {
            buckets: (0..buckets).map(|_| Mutex::new(Vec::new())).collect(),
            count: AtomicU32::new(0),
        }
    }

    fn bucket_for(&self, addr: SyncAddr) -> usize {
        // A simple multiplicative hash of the address, as an interposition
        // library without knowledge of the allocation pattern would use.
        let hash = addr.0.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (hash >> 33) as usize % self.buckets.len()
    }

    /// Average chain length, reported by the ablation bench.
    pub fn average_chain_length(&self) -> f64 {
        let total: usize = self.buckets.iter().map(|b| b.lock().len()).sum();
        total as f64 / self.buckets.len() as f64
    }
}

impl Default for HashDirectory {
    fn default() -> Self {
        HashDirectory::with_buckets(64)
    }
}

impl SyncVarDirectory for HashDirectory {
    fn strategy(&self) -> &'static str {
        "global-hash-table"
    }

    fn register(&self, addr: SyncAddr) -> VarId {
        let id = VarId(self.count.fetch_add(1, Ordering::AcqRel));
        let bucket = self.bucket_for(addr);
        self.buckets[bucket].lock().push((addr, SyncSlot::new(id)));
        id
    }

    fn slot(&self, addr: SyncAddr) -> Result<Arc<SyncSlot>, UnknownSyncVar> {
        let bucket = self.bucket_for(addr);
        let chain = self.buckets[bucket].lock();
        chain
            .iter()
            .find(|(key, _)| *key == addr)
            .map(|(_, slot)| Arc::clone(slot))
            .ok_or(UnknownSyncVar { addr })
    }

    fn len(&self) -> usize {
        self.count.load(Ordering::Acquire) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(directory: &dyn SyncVarDirectory, variables: u64) {
        assert!(directory.is_empty());
        let addrs: Vec<SyncAddr> = (0..variables)
            .map(|i| {
                // The shadow directory's token is its own index; the hash
                // directory keys on whatever address arrives.  Registering
                // in order keeps the two interchangeable in this test.
                let addr = SyncAddr(i);
                let id = directory.register(addr);
                assert_eq!(id, VarId(i as u32));
                addr
            })
            .collect();
        assert_eq!(directory.len(), variables as usize);
        for (round, addr) in addrs.iter().enumerate() {
            directory
                .record(*addr, ThreadId(0), SyncOp::MutexLock, round as u32)
                .unwrap();
        }
        for (index, addr) in addrs.iter().enumerate() {
            let slot = directory.slot(*addr).unwrap();
            assert_eq!(slot.id, VarId(index as u32));
            assert_eq!(slot.list.len(), 1);
        }
    }

    #[test]
    fn shadow_directory_registers_and_finds_every_variable() {
        exercise(&ShadowDirectory::new(), 200);
    }

    #[test]
    fn hash_directory_registers_and_finds_every_variable() {
        let directory = HashDirectory::with_buckets(16);
        exercise(&directory, 200);
        assert!(directory.average_chain_length() > 1.0);
    }

    #[test]
    fn unregistered_variables_are_a_typed_error() {
        let directory = ShadowDirectory::new();
        let err = directory.slot(SyncAddr(3)).unwrap_err();
        assert_eq!(err.addr, SyncAddr(3));
        assert!(err.to_string().contains("never registered"));
        let hash = HashDirectory::default();
        assert_eq!(
            hash.record(SyncAddr(9), ThreadId(0), SyncOp::MutexLock, 0),
            Err(UnknownSyncVar { addr: SyncAddr(9) })
        );
    }

    #[test]
    fn concurrent_registration_hands_out_unique_ids() {
        let directory = std::sync::Arc::new(HashDirectory::with_buckets(8));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let directory = std::sync::Arc::clone(&directory);
                std::thread::spawn(move || {
                    (0..64)
                        .map(|i| directory.register(SyncAddr(t * 1000 + i)).0)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut ids: Vec<u32> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 256, "registration ids must be unique");
        assert_eq!(directory.len(), 256);
    }

    #[test]
    fn strategies_identify_themselves() {
        assert_eq!(ShadowDirectory::new().strategy(), "shadow-indirection");
        assert_eq!(HashDirectory::default().strategy(), "global-hash-table");
    }
}
