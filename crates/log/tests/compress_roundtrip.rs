//! Property tests: arbitrary order logs survive compress -> decompress.
//!
//! The delta/varint block encoding (`ireplayer_log::compress`) must be
//! exact for *every* log, not just the regular ones it optimizes for.
//! These properties drive generated event and var-entry sequences --
//! empty epochs, single-thread monotone runs, and adversarial max-delta
//! jumps between consecutive events -- through a full round trip and
//! require equality, mirroring the generation style of the workspace's
//! `tests/properties.rs`.

use ireplayer_log::compress::{
    compress_events, compress_var_entries, decompress_events, decompress_var_entries, put_svarint, put_uvarint,
    read_svarint, read_uvarint,
};
use ireplayer_log::wire::Reader;
use ireplayer_log::{Event, EventKind, SyncOp, SyscallOutcome, ThreadId, VarEntry, VarId};
use proptest::prelude::*;

/// Decodes a generated word into one event.  The low bits pick the shape:
/// mostly sync events (some forced onto the previous thread/var to create
/// runs), occasionally a syscall, occasionally a max-delta jump.
fn build_events(words: &[(u64, u64, u64)]) -> Vec<Event> {
    let mut events = Vec::new();
    let mut prev_thread = 0u32;
    let mut prev_var = 0u32;
    let mut next_index = 0u32;
    for &(shape, a, b) in words {
        let (thread, index) = match shape % 8 {
            // Continue the current thread's run: consecutive index, same var.
            0..=3 => (prev_thread, next_index),
            // Same thread, but the index jumps.
            4 => (prev_thread, (a % u64::from(u32::MAX)) as u32),
            // Max-delta jump: far-away thread and index.
            5 => ((a >> 32) as u32, a as u32),
            // Back to thread 0 (a frequent real pattern).
            _ => (0, next_index),
        };
        let kind = if shape % 16 == 7 {
            EventKind::Syscall {
                code: (b % 1000) as u16,
                outcome: SyscallOutcome {
                    ret: b as i64,
                    data: a.to_le_bytes()[..(b % 9) as usize].to_vec(),
                },
            }
        } else {
            let var = match shape % 4 {
                0 => prev_var,
                1 => (b >> 32) as u32,
                _ => (b % 7) as u32,
            };
            prev_var = var;
            EventKind::Sync {
                var: VarId(var),
                op: SyncOp::from_code((b % 8) as u8).unwrap(),
                // Mix small, repeated, and extreme results.
                result: match shape % 4 {
                    0 => 0,
                    1 => i64::MIN + (b as i64 & 0xff),
                    _ => b as i64,
                },
            }
        };
        events.push(Event {
            thread: ThreadId(thread),
            index,
            kind,
        });
        prev_thread = thread;
        next_index = index.wrapping_add(1);
    }
    events
}

fn build_var_entries(words: &[(u64, u64, u64)]) -> Vec<VarEntry> {
    let mut entries = Vec::new();
    let mut prev_thread = 0u32;
    let mut next_index = 0u32;
    for &(shape, a, b) in words {
        let (thread, thread_index) = match shape % 4 {
            // Extend the current run.
            0..=1 => (prev_thread, next_index),
            // Contended handoff to another thread.
            2 => ((a % 16) as u32, (b % 1000) as u32),
            // Max-delta jump.
            _ => ((a >> 32) as u32, b as u32),
        };
        entries.push(VarEntry {
            thread: ThreadId(thread),
            op: SyncOp::from_code((a % 8) as u8).unwrap(),
            thread_index,
        });
        prev_thread = thread;
        next_index = thread_index.wrapping_add(1);
    }
    entries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn event_blocks_roundtrip(words in proptest::collection::vec(
        (any::<u64>(), any::<u64>(), any::<u64>()), 0..200)) {
        let events = build_events(&words);
        let block = compress_events(&events);
        let mut reader = Reader::new(&block);
        let decoded = decompress_events(&mut reader).unwrap();
        prop_assert_eq!(decoded, events);
        prop_assert_eq!(reader.remaining(), 0);
    }

    #[test]
    fn var_entry_blocks_roundtrip(words in proptest::collection::vec(
        (any::<u64>(), any::<u64>(), any::<u64>()), 0..200)) {
        let entries = build_var_entries(&words);
        let block = compress_var_entries(&entries);
        let mut reader = Reader::new(&block);
        let decoded = decompress_var_entries(&mut reader).unwrap();
        prop_assert_eq!(decoded, entries);
        prop_assert_eq!(reader.remaining(), 0);
    }

    #[test]
    fn single_thread_runs_stay_small_and_exact(len in 1usize..2000, start in any::<u32>()) {
        // A monotone uncontended run -- the case the format optimizes for --
        // must compress to one frame and decode exactly, even when the run
        // starts near u32::MAX (the encoder refuses to wrap past it).
        let start = start.min(u32::MAX - len as u32);
        let events: Vec<Event> = (0..len as u32)
            .map(|i| Event {
                thread: ThreadId(3),
                index: start + i,
                kind: EventKind::Sync {
                    var: VarId(5),
                    op: SyncOp::MutexLock,
                    result: 1,
                },
            })
            .collect();
        let block = compress_events(&events);
        prop_assert!(block.len() <= 32, "one frame expected, got {} bytes", block.len());
        let decoded = decompress_events(&mut Reader::new(&block)).unwrap();
        prop_assert_eq!(decoded, events);
    }

    #[test]
    fn varints_roundtrip(value in any::<u64>()) {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, value);
        prop_assert_eq!(read_uvarint(&mut Reader::new(&buf), "t").unwrap(), value);

        let signed = value as i64;
        let mut buf = Vec::new();
        put_svarint(&mut buf, signed);
        prop_assert_eq!(read_svarint(&mut Reader::new(&buf), "t").unwrap(), signed);
    }

    #[test]
    fn truncated_blocks_never_panic(words in proptest::collection::vec(
        (any::<u64>(), any::<u64>(), any::<u64>()), 1..40), cut_seed in any::<u64>()) {
        let events = build_events(&words);
        let block = compress_events(&events);
        let cut = (cut_seed % block.len() as u64) as usize;
        // A strict prefix must fail (the count header promises more).
        prop_assert!(decompress_events(&mut Reader::new(&block[..cut])).is_err());
    }
}
