//! The managed arena: the byte-addressable memory region that plays the role
//! of the process heap and globals in the original system.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use crate::addr::{MemAddr, Span};
use crate::error::MemError;

/// The shared backing store behind one or more [`Arena`] views.
struct Backing {
    bytes: Box<[AtomicU8]>,
}

/// A contiguous, shared, byte-addressable memory region.
///
/// The arena is the single backing store for all application-visible memory:
/// the managed globals region, the deterministic heap, and the managed
/// thread-local slots.  It is shared between all application threads.
///
/// Every byte is stored in an [`AtomicU8`] accessed with relaxed ordering.
/// This gives racy applications real data races -- concurrent unsynchronized
/// writes can interleave and multi-byte values can tear -- while remaining
/// sound Rust.  That is exactly the behaviour iReplayer needs: data races in
/// the original execution are *not* recorded, and the replay machinery
/// detects the divergence they cause and searches for a matching schedule
/// (paper §2.2.2, §3.5.2).
///
/// # Partitions
///
/// An `Arena` is a *view* over reference-counted backing storage.
/// [`Arena::new`] allocates backing for a single view;
/// [`Arena::partitioned`] allocates one backing region and slices it into
/// several disjoint, equally-sized views -- the multi-tenant configuration,
/// where each concurrent session owns exactly one partition.  Every view is
/// self-contained: addresses are partition-relative (each partition has its
/// own reserved null byte at local offset 0), bounds checks confine
/// accesses to the view's range, and [`Arena::wipe`] clears only the view's
/// own bytes.  A program therefore observes byte-identical addresses
/// whether it runs on a whole arena or inside any partition of a shared
/// one, and no access through one partition can read or write a
/// neighbour's bytes.
///
/// Addresses start at 1: offset 0 is reserved so that [`MemAddr::NULL`]
/// always faults, mirroring a null-pointer dereference.
///
/// # Example
///
/// ```
/// use ireplayer_mem::{Arena, MemAddr};
///
/// # fn main() -> Result<(), ireplayer_mem::MemError> {
/// let arena = Arena::new(4096);
/// arena.write_u32(MemAddr::new(128), 7)?;
/// assert_eq!(arena.read_u32(MemAddr::new(128))?, 7);
/// assert!(arena.read_u8(MemAddr::NULL).is_err());
/// # Ok(())
/// # }
/// ```
pub struct Arena {
    backing: Arc<Backing>,
    /// Offset of this view's byte 0 within the backing store.
    base: usize,
    /// Length of this view in bytes.
    len: usize,
}

impl Arena {
    /// Creates a zero-filled arena of `size` bytes backed by its own
    /// storage (a single-partition view).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        Arena::partitioned(size, 1)
            .pop()
            .expect("partitioned(_, 1) yields exactly one view")
    }

    /// Allocates one backing region of `partition_size * partitions` bytes
    /// and returns `partitions` disjoint views of `partition_size` bytes
    /// each, in base-offset order.
    ///
    /// Each view behaves exactly like an independent
    /// [`Arena::new`]`(partition_size)`: partition-relative addresses, its
    /// own null byte, independent [`Arena::wipe`]/[`Arena::hash_prefix`].
    /// The single shared allocation is what makes a multi-tenant runtime's
    /// memory footprint one block instead of one per tenant.
    ///
    /// # Panics
    ///
    /// Panics if `partition_size` is zero, `partitions` is zero, or the
    /// total size overflows `usize`.
    pub fn partitioned(partition_size: usize, partitions: usize) -> Vec<Arena> {
        assert!(partition_size > 0, "arena size must be non-zero");
        assert!(partitions > 0, "at least one partition is required");
        let total = partition_size
            .checked_mul(partitions)
            .expect("total arena size must not overflow");
        let mut bytes = Vec::with_capacity(total);
        bytes.resize_with(total, || AtomicU8::new(0));
        let backing = Arc::new(Backing {
            bytes: bytes.into_boxed_slice(),
        });
        (0..partitions)
            .map(|index| Arena {
                backing: Arc::clone(&backing),
                base: index * partition_size,
                len: partition_size,
            })
            .collect()
    }

    /// Returns the size of this view in bytes.
    pub fn size(&self) -> usize {
        self.len
    }

    /// Offset of this view's byte 0 within the shared backing store (the
    /// partition's base; 0 for a single-partition arena).
    pub fn partition_base(&self) -> usize {
        self.base
    }

    /// Returns `true` when both views slice the same backing allocation
    /// (i.e. they are partitions of one [`Arena::partitioned`] family).
    pub fn shares_backing_with(&self, other: &Arena) -> bool {
        Arc::ptr_eq(&self.backing, &other.backing)
    }

    /// Returns the span of usable addresses: `[1, size)`.
    ///
    /// Offset 0 is reserved for the null address.
    pub fn span(&self) -> Span {
        Span::new(MemAddr::new(1), self.len as u64 - 1)
    }

    #[inline]
    fn slot(&self, index: usize) -> &AtomicU8 {
        &self.backing.bytes[self.base + index]
    }

    fn check(&self, addr: MemAddr, len: usize) -> Result<usize, MemError> {
        let start = addr.as_usize();
        let end = start.checked_add(len);
        match end {
            Some(end) if start >= 1 && end <= self.len && len > 0 => Ok(start),
            _ => Err(MemError::OutOfBounds {
                addr,
                len,
                arena_size: self.len,
            }),
        }
    }

    /// Reads a single byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the address is null or outside
    /// the arena.
    pub fn read_u8(&self, addr: MemAddr) -> Result<u8, MemError> {
        let start = self.check(addr, 1)?;
        Ok(self.slot(start).load(Ordering::Relaxed))
    }

    /// Writes a single byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the address is null or outside
    /// the arena.
    pub fn write_u8(&self, addr: MemAddr, value: u8) -> Result<(), MemError> {
        let start = self.check(addr, 1)?;
        self.slot(start).store(value, Ordering::Relaxed);
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `addr` into `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if any byte of the range is outside
    /// the arena.
    pub fn read_bytes(&self, addr: MemAddr, buf: &mut [u8]) -> Result<(), MemError> {
        if buf.is_empty() {
            return Ok(());
        }
        let start = self.check(addr, buf.len())?;
        for (i, slot) in buf.iter_mut().enumerate() {
            *slot = self.slot(start + i).load(Ordering::Relaxed);
        }
        Ok(())
    }

    /// Writes all of `data` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if any byte of the range is outside
    /// the arena.
    pub fn write_bytes(&self, addr: MemAddr, data: &[u8]) -> Result<(), MemError> {
        if data.is_empty() {
            return Ok(());
        }
        let start = self.check(addr, data.len())?;
        for (i, byte) in data.iter().enumerate() {
            self.slot(start + i).store(*byte, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Fills `len` bytes starting at `addr` with `value`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if any byte of the range is outside
    /// the arena.
    pub fn fill(&self, addr: MemAddr, len: usize, value: u8) -> Result<(), MemError> {
        if len == 0 {
            return Ok(());
        }
        let start = self.check(addr, len)?;
        for i in 0..len {
            self.slot(start + i).store(value, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Zeroes the first `upto` bytes of this view (clamped to its size).
    ///
    /// This is the warm-relaunch reset: the runtime wipes the prefix a
    /// finished run touched so the next run observes the same zero-filled
    /// memory a freshly constructed arena would provide, without
    /// re-allocating the backing storage.  On a partitioned arena the wipe
    /// is strictly partition-local -- releasing one tenant never disturbs a
    /// neighbour's bytes.  The caller guarantees no application thread runs
    /// concurrently *within this partition*.
    pub fn wipe(&self, upto: usize) {
        let upto = upto.min(self.len);
        for index in 0..upto {
            self.slot(index).store(0, Ordering::Relaxed);
        }
    }

    /// Copies `len` bytes from `src` to `dst` within the arena.
    ///
    /// The copy is not atomic; concurrent writers may interleave, as with a
    /// racy `memcpy`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if either range is outside the
    /// arena.
    pub fn copy(&self, src: MemAddr, dst: MemAddr, len: usize) -> Result<(), MemError> {
        if len == 0 {
            return Ok(());
        }
        let s = self.check(src, len)?;
        let d = self.check(dst, len)?;
        if d <= s {
            for i in 0..len {
                let b = self.slot(s + i).load(Ordering::Relaxed);
                self.slot(d + i).store(b, Ordering::Relaxed);
            }
        } else {
            for i in (0..len).rev() {
                let b = self.slot(s + i).load(Ordering::Relaxed);
                self.slot(d + i).store(b, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Dumps the whole view (including the reserved null byte) into a
    /// `Vec<u8>`.  Used by snapshots and by the memory-diff experiment.
    pub fn dump(&self) -> Vec<u8> {
        self.dump_prefix(self.len)
    }

    /// Dumps only the first `len` bytes of the view.
    ///
    /// Snapshots use this to avoid copying memory past the heap high-water
    /// mark, mirroring the paper's "copy all writable memory" step without
    /// copying untouched pages.
    pub fn dump_prefix(&self, len: usize) -> Vec<u8> {
        let len = len.min(self.len);
        (0..len).map(|i| self.slot(i).load(Ordering::Relaxed)).collect()
    }

    /// Overwrites the first `data.len()` bytes of the view with `data`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::SnapshotSizeMismatch`] if `data` is larger than
    /// the view.
    pub fn restore_prefix(&self, data: &[u8]) -> Result<(), MemError> {
        if data.len() > self.len {
            return Err(MemError::SnapshotSizeMismatch {
                snapshot: data.len(),
                arena: self.len,
            });
        }
        for (i, byte) in data.iter().enumerate() {
            self.slot(i).store(*byte, Ordering::Relaxed);
        }
        Ok(())
    }

    /// A 64-bit FNV-1a hash of the first `len` bytes of the view.
    ///
    /// The identical-replay validation (§5.2) compares heap images before and
    /// after a replay; hashing gives a cheap equality check and the full
    /// [`crate::snapshot::MemSnapshot::diff`] gives the byte-level
    /// percentage reported in Table 1.  Because the hash walks
    /// partition-relative bytes, a program's final image hashes identically
    /// whether it ran on a whole arena or inside a partition.
    pub fn hash_prefix(&self, len: usize) -> u64 {
        let len = len.min(self.len);
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for i in 0..len {
            hash ^= u64::from(self.slot(i).load(Ordering::Relaxed));
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("base", &self.base)
            .field("len", &self.len)
            .field("backing_len", &self.backing.bytes.len())
            .finish()
    }
}

macro_rules! int_accessors {
    ($read:ident, $write:ident, $ty:ty, $n:expr) => {
        impl Arena {
            /// Reads a little-endian integer of this width.
            ///
            /// The read is composed of per-byte atomic loads, so concurrent
            /// unsynchronized writers can produce torn values -- exactly the
            /// behaviour of a data race on real hardware.
            ///
            /// # Errors
            ///
            /// Returns [`MemError::OutOfBounds`] if the range is outside the
            /// arena.
            pub fn $read(&self, addr: MemAddr) -> Result<$ty, MemError> {
                let mut buf = [0u8; $n];
                self.read_bytes(addr, &mut buf)?;
                Ok(<$ty>::from_le_bytes(buf))
            }

            /// Writes a little-endian integer of this width.
            ///
            /// # Errors
            ///
            /// Returns [`MemError::OutOfBounds`] if the range is outside the
            /// arena.
            pub fn $write(&self, addr: MemAddr, value: $ty) -> Result<(), MemError> {
                self.write_bytes(addr, &value.to_le_bytes())
            }
        }
    };
}

int_accessors!(read_u16, write_u16, u16, 2);
int_accessors!(read_u32, write_u32, u32, 4);
int_accessors!(read_u64, write_u64, u64, 8);
int_accessors!(read_i64, write_i64, i64, 8);

impl Arena {
    /// Reads an `f64` stored in little-endian byte order.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range is outside the arena.
    pub fn read_f64(&self, addr: MemAddr) -> Result<f64, MemError> {
        Ok(f64::from_bits(self.read_u64(addr)?))
    }

    /// Writes an `f64` in little-endian byte order.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range is outside the arena.
    pub fn write_f64(&self, addr: MemAddr, value: f64) -> Result<(), MemError> {
        self.write_u64(addr, value.to_bits())
    }

    /// Reads a managed-memory address stored at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range is outside the arena.
    pub fn read_addr(&self, addr: MemAddr) -> Result<MemAddr, MemError> {
        Ok(MemAddr::new(self.read_u64(addr)?))
    }

    /// Stores a managed-memory address at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range is outside the arena.
    pub fn write_addr(&self, addr: MemAddr, value: MemAddr) -> Result<(), MemError> {
        self.write_u64(addr, value.offset())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_widths() {
        let arena = Arena::new(1024);
        let a = MemAddr::new(16);
        arena.write_u8(a, 0xab).unwrap();
        assert_eq!(arena.read_u8(a).unwrap(), 0xab);
        arena.write_u16(a, 0xbeef).unwrap();
        assert_eq!(arena.read_u16(a).unwrap(), 0xbeef);
        arena.write_u32(a, 0xdead_beef).unwrap();
        assert_eq!(arena.read_u32(a).unwrap(), 0xdead_beef);
        arena.write_u64(a, u64::MAX - 5).unwrap();
        assert_eq!(arena.read_u64(a).unwrap(), u64::MAX - 5);
        arena.write_i64(a, -12345).unwrap();
        assert_eq!(arena.read_i64(a).unwrap(), -12345);
        arena.write_f64(a, 3.5).unwrap();
        assert_eq!(arena.read_f64(a).unwrap(), 3.5);
        arena.write_addr(a, MemAddr::new(77)).unwrap();
        assert_eq!(arena.read_addr(a).unwrap(), MemAddr::new(77));
    }

    #[test]
    fn null_and_out_of_bounds_fault() {
        let arena = Arena::new(64);
        assert!(arena.read_u8(MemAddr::NULL).is_err());
        assert!(arena.write_u8(MemAddr::NULL, 1).is_err());
        assert!(arena.read_u8(MemAddr::new(64)).is_err());
        assert!(arena.read_u64(MemAddr::new(60)).is_err());
        assert!(arena.write_u64(MemAddr::new(56), 0).is_ok());
        assert!(arena.write_u64(MemAddr::new(57), 0).is_err());
    }

    #[test]
    fn byte_ranges_and_fill() {
        let arena = Arena::new(256);
        let a = MemAddr::new(10);
        arena.write_bytes(a, b"hello world").unwrap();
        let mut buf = [0u8; 11];
        arena.read_bytes(a, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
        arena.fill(a, 5, b'x').unwrap();
        arena.read_bytes(a, &mut buf).unwrap();
        assert_eq!(&buf, b"xxxxx world");
        // Empty operations succeed even at the null address.
        arena.read_bytes(MemAddr::NULL, &mut []).unwrap();
        arena.write_bytes(MemAddr::NULL, &[]).unwrap();
        arena.fill(MemAddr::NULL, 0, 0).unwrap();
    }

    #[test]
    fn copy_handles_overlap() {
        let arena = Arena::new(128);
        arena.write_bytes(MemAddr::new(10), b"abcdef").unwrap();
        // Forward overlapping copy.
        arena.copy(MemAddr::new(10), MemAddr::new(12), 6).unwrap();
        let mut buf = [0u8; 6];
        arena.read_bytes(MemAddr::new(12), &mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
        // Backward overlapping copy.
        arena.copy(MemAddr::new(12), MemAddr::new(11), 6).unwrap();
        arena.read_bytes(MemAddr::new(11), &mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn dump_and_restore_round_trip() {
        let arena = Arena::new(128);
        arena.write_bytes(MemAddr::new(1), b"state one").unwrap();
        let saved = arena.dump_prefix(64);
        let hash_before = arena.hash_prefix(64);
        arena.write_bytes(MemAddr::new(1), b"state two").unwrap();
        assert_ne!(arena.hash_prefix(64), hash_before);
        arena.restore_prefix(&saved).unwrap();
        assert_eq!(arena.hash_prefix(64), hash_before);
        let mut buf = [0u8; 9];
        arena.read_bytes(MemAddr::new(1), &mut buf).unwrap();
        assert_eq!(&buf, b"state one");
    }

    #[test]
    fn restore_rejects_oversized_snapshot() {
        let arena = Arena::new(16);
        let err = arena.restore_prefix(&[0u8; 32]).unwrap_err();
        assert!(matches!(err, MemError::SnapshotSizeMismatch { .. }));
    }

    #[test]
    fn span_excludes_null_byte() {
        let arena = Arena::new(100);
        let span = arena.span();
        assert_eq!(span.addr, MemAddr::new(1));
        assert_eq!(span.len, 99);
        assert_eq!(arena.size(), 100);
    }

    #[test]
    fn arena_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Arena>();
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_sized_arena_panics() {
        let _ = Arena::new(0);
    }

    // -- partitioned views ----------------------------------------------

    #[test]
    fn partitions_share_one_backing_allocation() {
        let parts = Arena::partitioned(256, 3);
        assert_eq!(parts.len(), 3);
        for (i, part) in parts.iter().enumerate() {
            assert_eq!(part.size(), 256);
            assert_eq!(part.partition_base(), i * 256);
            assert!(part.shares_backing_with(&parts[0]));
        }
        let other = Arena::new(256);
        assert!(!other.shares_backing_with(&parts[0]));
    }

    #[test]
    fn partitions_are_isolated_and_partition_relative() {
        let parts = Arena::partitioned(128, 2);
        let a = MemAddr::new(10);
        // The same partition-relative address holds independent bytes.
        parts[0].write_bytes(a, b"tenant-zero").unwrap();
        parts[1].write_bytes(a, b"tenant-one!").unwrap();
        let mut buf = [0u8; 11];
        parts[0].read_bytes(a, &mut buf).unwrap();
        assert_eq!(&buf, b"tenant-zero");
        parts[1].read_bytes(a, &mut buf).unwrap();
        assert_eq!(&buf, b"tenant-one!");
        // Every untouched byte of a partition stays zero despite the
        // neighbour's writes.
        let p0 = parts[0].dump();
        let p1 = parts[1].dump();
        assert_eq!(&p0[10..21], b"tenant-zero");
        assert!(p0[21..].iter().all(|b| *b == 0));
        assert_eq!(&p1[10..21], b"tenant-one!");
        assert!(p1[21..].iter().all(|b| *b == 0));
    }

    #[test]
    fn partition_bounds_do_not_reach_the_neighbour() {
        let parts = Arena::partitioned(64, 2);
        // The last valid byte is partition-local offset 63; one past it is
        // the neighbour's null byte and must fault, not wrap into it.
        assert!(parts[0].write_u8(MemAddr::new(63), 1).is_ok());
        assert!(parts[0].write_u8(MemAddr::new(64), 1).is_err());
        assert!(parts[0].write_u64(MemAddr::new(60), 0).is_err());
        assert!(parts[1].read_u8(MemAddr::NULL).is_err());
        // The neighbour saw none of partition 0's probing.
        assert!(parts[1].dump().iter().all(|b| *b == 0));
    }

    #[test]
    fn wipe_is_partition_local() {
        let parts = Arena::partitioned(128, 2);
        parts[0].write_bytes(MemAddr::new(1), b"gone soon").unwrap();
        parts[1].write_bytes(MemAddr::new(1), b"survives").unwrap();
        parts[0].wipe(128);
        assert!(parts[0].dump().iter().all(|b| *b == 0), "partition 0 wiped");
        let mut buf = [0u8; 8];
        parts[1].read_bytes(MemAddr::new(1), &mut buf).unwrap();
        assert_eq!(&buf, b"survives");
    }

    #[test]
    fn partition_hashes_match_a_solo_arena() {
        // The same writes at the same partition-relative addresses hash
        // identically on a solo arena and on any partition of a shared one:
        // the fingerprint-identity property the runtime builds on.
        let solo = Arena::new(256);
        let parts = Arena::partitioned(256, 3);
        for arena in std::iter::once(&solo).chain(parts.iter()) {
            arena.write_bytes(MemAddr::new(5), b"identical image").unwrap();
        }
        let expected = solo.hash_prefix(256);
        for part in &parts {
            assert_eq!(part.hash_prefix(256), expected);
            assert_eq!(part.dump(), solo.dump());
        }
    }
}
