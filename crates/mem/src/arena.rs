//! The managed arena: the byte-addressable memory region that plays the role
//! of the process heap and globals in the original system.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::addr::{MemAddr, Span};
use crate::error::MemError;

/// A contiguous, shared, byte-addressable memory region.
///
/// The arena is the single backing store for all application-visible memory:
/// the managed globals region, the deterministic heap, and the managed
/// thread-local slots.  It is shared between all application threads.
///
/// Every byte is stored in an [`AtomicU8`] accessed with relaxed ordering.
/// This gives racy applications real data races -- concurrent unsynchronized
/// writes can interleave and multi-byte values can tear -- while remaining
/// sound Rust.  That is exactly the behaviour iReplayer needs: data races in
/// the original execution are *not* recorded, and the replay machinery
/// detects the divergence they cause and searches for a matching schedule
/// (paper §2.2.2, §3.5.2).
///
/// Addresses start at 1: offset 0 is reserved so that [`MemAddr::NULL`]
/// always faults, mirroring a null-pointer dereference.
///
/// # Example
///
/// ```
/// use ireplayer_mem::{Arena, MemAddr};
///
/// # fn main() -> Result<(), ireplayer_mem::MemError> {
/// let arena = Arena::new(4096);
/// arena.write_u32(MemAddr::new(128), 7)?;
/// assert_eq!(arena.read_u32(MemAddr::new(128))?, 7);
/// assert!(arena.read_u8(MemAddr::NULL).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Arena {
    bytes: Box<[AtomicU8]>,
}

impl Arena {
    /// Creates a zero-filled arena of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "arena size must be non-zero");
        let mut bytes = Vec::with_capacity(size);
        bytes.resize_with(size, || AtomicU8::new(0));
        Arena {
            bytes: bytes.into_boxed_slice(),
        }
    }

    /// Returns the size of the arena in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Returns the span of usable addresses: `[1, size)`.
    ///
    /// Offset 0 is reserved for the null address.
    pub fn span(&self) -> Span {
        Span::new(MemAddr::new(1), self.bytes.len() as u64 - 1)
    }

    fn check(&self, addr: MemAddr, len: usize) -> Result<usize, MemError> {
        let start = addr.as_usize();
        let end = start.checked_add(len);
        match end {
            Some(end) if start >= 1 && end <= self.bytes.len() && len > 0 => Ok(start),
            _ => Err(MemError::OutOfBounds {
                addr,
                len,
                arena_size: self.bytes.len(),
            }),
        }
    }

    /// Reads a single byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the address is null or outside
    /// the arena.
    pub fn read_u8(&self, addr: MemAddr) -> Result<u8, MemError> {
        let start = self.check(addr, 1)?;
        Ok(self.bytes[start].load(Ordering::Relaxed))
    }

    /// Writes a single byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the address is null or outside
    /// the arena.
    pub fn write_u8(&self, addr: MemAddr, value: u8) -> Result<(), MemError> {
        let start = self.check(addr, 1)?;
        self.bytes[start].store(value, Ordering::Relaxed);
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `addr` into `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if any byte of the range is outside
    /// the arena.
    pub fn read_bytes(&self, addr: MemAddr, buf: &mut [u8]) -> Result<(), MemError> {
        if buf.is_empty() {
            return Ok(());
        }
        let start = self.check(addr, buf.len())?;
        for (i, slot) in buf.iter_mut().enumerate() {
            *slot = self.bytes[start + i].load(Ordering::Relaxed);
        }
        Ok(())
    }

    /// Writes all of `data` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if any byte of the range is outside
    /// the arena.
    pub fn write_bytes(&self, addr: MemAddr, data: &[u8]) -> Result<(), MemError> {
        if data.is_empty() {
            return Ok(());
        }
        let start = self.check(addr, data.len())?;
        for (i, byte) in data.iter().enumerate() {
            self.bytes[start + i].store(*byte, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Fills `len` bytes starting at `addr` with `value`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if any byte of the range is outside
    /// the arena.
    pub fn fill(&self, addr: MemAddr, len: usize, value: u8) -> Result<(), MemError> {
        if len == 0 {
            return Ok(());
        }
        let start = self.check(addr, len)?;
        for i in 0..len {
            self.bytes[start + i].store(value, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Zeroes the first `upto` bytes of the arena (clamped to its size).
    ///
    /// This is the warm-relaunch reset: the runtime wipes the prefix a
    /// finished run touched so the next run observes the same zero-filled
    /// memory a freshly constructed arena would provide, without
    /// re-allocating the backing storage.  The caller guarantees no
    /// application thread runs concurrently.
    pub fn wipe(&self, upto: usize) {
        for slot in self.bytes.iter().take(upto) {
            slot.store(0, Ordering::Relaxed);
        }
    }

    /// Copies `len` bytes from `src` to `dst` within the arena.
    ///
    /// The copy is not atomic; concurrent writers may interleave, as with a
    /// racy `memcpy`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if either range is outside the
    /// arena.
    pub fn copy(&self, src: MemAddr, dst: MemAddr, len: usize) -> Result<(), MemError> {
        if len == 0 {
            return Ok(());
        }
        let s = self.check(src, len)?;
        let d = self.check(dst, len)?;
        if d <= s {
            for i in 0..len {
                let b = self.bytes[s + i].load(Ordering::Relaxed);
                self.bytes[d + i].store(b, Ordering::Relaxed);
            }
        } else {
            for i in (0..len).rev() {
                let b = self.bytes[s + i].load(Ordering::Relaxed);
                self.bytes[d + i].store(b, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Dumps the whole arena (including the reserved null byte) into a
    /// `Vec<u8>`.  Used by snapshots and by the memory-diff experiment.
    pub fn dump(&self) -> Vec<u8> {
        self.bytes.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Dumps only the first `len` bytes of the arena.
    ///
    /// Snapshots use this to avoid copying memory past the heap high-water
    /// mark, mirroring the paper's "copy all writable memory" step without
    /// copying untouched pages.
    pub fn dump_prefix(&self, len: usize) -> Vec<u8> {
        let len = len.min(self.bytes.len());
        self.bytes[..len].iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Overwrites the first `data.len()` bytes of the arena with `data`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::SnapshotSizeMismatch`] if `data` is larger than
    /// the arena.
    pub fn restore_prefix(&self, data: &[u8]) -> Result<(), MemError> {
        if data.len() > self.bytes.len() {
            return Err(MemError::SnapshotSizeMismatch {
                snapshot: data.len(),
                arena: self.bytes.len(),
            });
        }
        for (i, byte) in data.iter().enumerate() {
            self.bytes[i].store(*byte, Ordering::Relaxed);
        }
        Ok(())
    }

    /// A 64-bit FNV-1a hash of the first `len` bytes of the arena.
    ///
    /// The identical-replay validation (§5.2) compares heap images before and
    /// after a replay; hashing gives a cheap equality check and the full
    /// [`crate::snapshot::MemSnapshot::diff`] gives the byte-level
    /// percentage reported in Table 1.
    pub fn hash_prefix(&self, len: usize) -> u64 {
        let len = len.min(self.bytes.len());
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in &self.bytes[..len] {
            hash ^= u64::from(b.load(Ordering::Relaxed));
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

macro_rules! int_accessors {
    ($read:ident, $write:ident, $ty:ty, $n:expr) => {
        impl Arena {
            /// Reads a little-endian integer of this width.
            ///
            /// The read is composed of per-byte atomic loads, so concurrent
            /// unsynchronized writers can produce torn values -- exactly the
            /// behaviour of a data race on real hardware.
            ///
            /// # Errors
            ///
            /// Returns [`MemError::OutOfBounds`] if the range is outside the
            /// arena.
            pub fn $read(&self, addr: MemAddr) -> Result<$ty, MemError> {
                let mut buf = [0u8; $n];
                self.read_bytes(addr, &mut buf)?;
                Ok(<$ty>::from_le_bytes(buf))
            }

            /// Writes a little-endian integer of this width.
            ///
            /// # Errors
            ///
            /// Returns [`MemError::OutOfBounds`] if the range is outside the
            /// arena.
            pub fn $write(&self, addr: MemAddr, value: $ty) -> Result<(), MemError> {
                self.write_bytes(addr, &value.to_le_bytes())
            }
        }
    };
}

int_accessors!(read_u16, write_u16, u16, 2);
int_accessors!(read_u32, write_u32, u32, 4);
int_accessors!(read_u64, write_u64, u64, 8);
int_accessors!(read_i64, write_i64, i64, 8);

impl Arena {
    /// Reads an `f64` stored in little-endian byte order.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range is outside the arena.
    pub fn read_f64(&self, addr: MemAddr) -> Result<f64, MemError> {
        Ok(f64::from_bits(self.read_u64(addr)?))
    }

    /// Writes an `f64` in little-endian byte order.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range is outside the arena.
    pub fn write_f64(&self, addr: MemAddr, value: f64) -> Result<(), MemError> {
        self.write_u64(addr, value.to_bits())
    }

    /// Reads a managed-memory address stored at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range is outside the arena.
    pub fn read_addr(&self, addr: MemAddr) -> Result<MemAddr, MemError> {
        Ok(MemAddr::new(self.read_u64(addr)?))
    }

    /// Stores a managed-memory address at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range is outside the arena.
    pub fn write_addr(&self, addr: MemAddr, value: MemAddr) -> Result<(), MemError> {
        self.write_u64(addr, value.offset())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_widths() {
        let arena = Arena::new(1024);
        let a = MemAddr::new(16);
        arena.write_u8(a, 0xab).unwrap();
        assert_eq!(arena.read_u8(a).unwrap(), 0xab);
        arena.write_u16(a, 0xbeef).unwrap();
        assert_eq!(arena.read_u16(a).unwrap(), 0xbeef);
        arena.write_u32(a, 0xdead_beef).unwrap();
        assert_eq!(arena.read_u32(a).unwrap(), 0xdead_beef);
        arena.write_u64(a, u64::MAX - 5).unwrap();
        assert_eq!(arena.read_u64(a).unwrap(), u64::MAX - 5);
        arena.write_i64(a, -12345).unwrap();
        assert_eq!(arena.read_i64(a).unwrap(), -12345);
        arena.write_f64(a, 3.5).unwrap();
        assert_eq!(arena.read_f64(a).unwrap(), 3.5);
        arena.write_addr(a, MemAddr::new(77)).unwrap();
        assert_eq!(arena.read_addr(a).unwrap(), MemAddr::new(77));
    }

    #[test]
    fn null_and_out_of_bounds_fault() {
        let arena = Arena::new(64);
        assert!(arena.read_u8(MemAddr::NULL).is_err());
        assert!(arena.write_u8(MemAddr::NULL, 1).is_err());
        assert!(arena.read_u8(MemAddr::new(64)).is_err());
        assert!(arena.read_u64(MemAddr::new(60)).is_err());
        assert!(arena.write_u64(MemAddr::new(56), 0).is_ok());
        assert!(arena.write_u64(MemAddr::new(57), 0).is_err());
    }

    #[test]
    fn byte_ranges_and_fill() {
        let arena = Arena::new(256);
        let a = MemAddr::new(10);
        arena.write_bytes(a, b"hello world").unwrap();
        let mut buf = [0u8; 11];
        arena.read_bytes(a, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
        arena.fill(a, 5, b'x').unwrap();
        arena.read_bytes(a, &mut buf).unwrap();
        assert_eq!(&buf, b"xxxxx world");
        // Empty operations succeed even at the null address.
        arena.read_bytes(MemAddr::NULL, &mut []).unwrap();
        arena.write_bytes(MemAddr::NULL, &[]).unwrap();
        arena.fill(MemAddr::NULL, 0, 0).unwrap();
    }

    #[test]
    fn copy_handles_overlap() {
        let arena = Arena::new(128);
        arena.write_bytes(MemAddr::new(10), b"abcdef").unwrap();
        // Forward overlapping copy.
        arena.copy(MemAddr::new(10), MemAddr::new(12), 6).unwrap();
        let mut buf = [0u8; 6];
        arena.read_bytes(MemAddr::new(12), &mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
        // Backward overlapping copy.
        arena.copy(MemAddr::new(12), MemAddr::new(11), 6).unwrap();
        arena.read_bytes(MemAddr::new(11), &mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn dump_and_restore_round_trip() {
        let arena = Arena::new(128);
        arena.write_bytes(MemAddr::new(1), b"state one").unwrap();
        let saved = arena.dump_prefix(64);
        let hash_before = arena.hash_prefix(64);
        arena.write_bytes(MemAddr::new(1), b"state two").unwrap();
        assert_ne!(arena.hash_prefix(64), hash_before);
        arena.restore_prefix(&saved).unwrap();
        assert_eq!(arena.hash_prefix(64), hash_before);
        let mut buf = [0u8; 9];
        arena.read_bytes(MemAddr::new(1), &mut buf).unwrap();
        assert_eq!(&buf, b"state one");
    }

    #[test]
    fn restore_rejects_oversized_snapshot() {
        let arena = Arena::new(16);
        let err = arena.restore_prefix(&[0u8; 32]).unwrap_err();
        assert!(matches!(err, MemError::SnapshotSizeMismatch { .. }));
    }

    #[test]
    fn span_excludes_null_byte() {
        let arena = Arena::new(100);
        let span = arena.span();
        assert_eq!(span.addr, MemAddr::new(1));
        assert_eq!(span.len, 99);
        assert_eq!(arena.size(), 100);
    }

    #[test]
    fn arena_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Arena>();
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_sized_arena_panics() {
        let _ = Arena::new(0);
    }
}
