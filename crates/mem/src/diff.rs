//! Byte-level difference statistics between two memory images.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Result of comparing a memory snapshot against the live arena.
///
/// Table 1 of the paper reports, per application, the percentage of heap
/// memory that differs between the original execution and the re-execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DiffStats {
    /// Number of bytes compared.
    pub bytes_compared: usize,
    /// Number of bytes that differ.
    pub bytes_different: usize,
}

impl DiffStats {
    /// Percentage (0-100) of compared bytes that differ.
    pub fn percent(&self) -> f64 {
        if self.bytes_compared == 0 {
            0.0
        } else {
            100.0 * self.bytes_different as f64 / self.bytes_compared as f64
        }
    }

    /// Returns `true` if the two images were identical.
    pub fn is_identical(&self) -> bool {
        self.bytes_different == 0
    }

    /// Merges another comparison into this one (used when diffing several
    /// regions, e.g. heap and globals, separately).
    pub fn merge(&mut self, other: DiffStats) {
        self.bytes_compared += other.bytes_compared;
        self.bytes_different += other.bytes_different;
    }
}

impl fmt::Display for DiffStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} bytes differ ({:.3}%)",
            self.bytes_different,
            self.bytes_compared,
            self.percent()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_handles_empty_and_nonempty_comparisons() {
        assert_eq!(DiffStats::default().percent(), 0.0);
        assert!(DiffStats::default().is_identical());
        let d = DiffStats {
            bytes_compared: 200,
            bytes_different: 25,
        };
        assert!((d.percent() - 12.5).abs() < 1e-9);
        assert!(!d.is_identical());
    }

    #[test]
    fn merge_accumulates_both_fields() {
        let mut a = DiffStats {
            bytes_compared: 100,
            bytes_different: 1,
        };
        a.merge(DiffStats {
            bytes_compared: 300,
            bytes_different: 3,
        });
        assert_eq!(a.bytes_compared, 400);
        assert_eq!(a.bytes_different, 4);
        assert!((a.percent() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_percentage() {
        let d = DiffStats {
            bytes_compared: 100,
            bytes_different: 1,
        };
        assert!(d.to_string().contains('%'));
    }
}
