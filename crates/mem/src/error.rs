//! Error type for managed-memory operations.

use std::fmt;

use crate::addr::MemAddr;

/// Errors produced by managed-memory operations.
///
/// Out-of-bounds accesses play the role of segmentation faults in the
/// original system: the runtime layer converts them into a fault that closes
/// the current epoch and (optionally) triggers a diagnostic replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// An access touched memory outside the arena.
    OutOfBounds {
        /// Start of the faulting access.
        addr: MemAddr,
        /// Length of the faulting access in bytes.
        len: usize,
        /// Total size of the arena.
        arena_size: usize,
    },
    /// The super heap has no blocks left to hand out.
    OutOfMemory {
        /// Size of the request that could not be satisfied.
        requested: usize,
    },
    /// An allocation request exceeded the largest supported size class.
    AllocationTooLarge {
        /// Size of the request.
        requested: usize,
        /// Largest size a single allocation may have.
        max: usize,
    },
    /// `free` was called on an address that is not the start of a live
    /// allocation.
    InvalidFree {
        /// The address passed to `free`.
        addr: MemAddr,
    },
    /// `free` was called twice on the same allocation.
    DoubleFree {
        /// The address passed to `free`.
        addr: MemAddr,
    },
    /// A watchpoint slot was requested but all hardware-style slots are in
    /// use.
    NoWatchpointSlot,
    /// A snapshot restore was attempted against an arena of a different size.
    SnapshotSizeMismatch {
        /// Size of the snapshot in bytes.
        snapshot: usize,
        /// Size of the arena in bytes.
        arena: usize,
    },
    /// The globals region is exhausted.
    GlobalsExhausted {
        /// Size of the request that could not be satisfied.
        requested: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { addr, len, arena_size } => write!(
                f,
                "access of {len} bytes at {addr} is outside the {arena_size}-byte arena"
            ),
            MemError::OutOfMemory { requested } => {
                write!(f, "super heap exhausted while requesting {requested} bytes")
            }
            MemError::AllocationTooLarge { requested, max } => write!(
                f,
                "allocation of {requested} bytes exceeds the maximum object size of {max} bytes"
            ),
            MemError::InvalidFree { addr } => {
                write!(f, "free of {addr} which is not a live allocation")
            }
            MemError::DoubleFree { addr } => write!(f, "double free of {addr}"),
            MemError::NoWatchpointSlot => {
                write!(f, "all watchpoint slots are in use")
            }
            MemError::SnapshotSizeMismatch { snapshot, arena } => write!(
                f,
                "snapshot of {snapshot} bytes cannot be restored into an arena of {arena} bytes"
            ),
            MemError::GlobalsExhausted { requested } => {
                write!(f, "globals region exhausted while requesting {requested} bytes")
            }
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_every_variant() {
        let variants = [
            MemError::OutOfBounds {
                addr: MemAddr::new(4),
                len: 8,
                arena_size: 16,
            },
            MemError::OutOfMemory { requested: 64 },
            MemError::AllocationTooLarge {
                requested: 1 << 30,
                max: 1 << 22,
            },
            MemError::InvalidFree { addr: MemAddr::new(12) },
            MemError::DoubleFree { addr: MemAddr::new(12) },
            MemError::NoWatchpointSlot,
            MemError::SnapshotSizeMismatch { snapshot: 8, arena: 16 },
            MemError::GlobalsExhausted { requested: 128 },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
            assert!(!format!("{v:?}").is_empty());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemError>();
    }
}
