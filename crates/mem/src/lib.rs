//! Managed memory substrate for the iReplayer runtime.
//!
//! The original iReplayer system snapshots and restores the raw process heap
//! and interposes on `malloc`/`free` with a deterministic per-thread heap.
//! In this reproduction, application memory lives in a *managed arena*: a
//! contiguous, byte-addressable region owned by the runtime.  Addresses are
//! stable offsets into that arena, which makes the paper's guarantees --
//! identical heap layout across re-executions, byte-exact snapshot/restore,
//! canary placement, and watchpoint checks -- straightforward to provide and
//! to validate.
//!
//! The crate provides:
//!
//! * [`Arena`]: the byte-addressable memory region with typed accessors,
//!   built from per-byte atomics so that racy applications exhibit real data
//!   races with well-defined (per-byte) semantics instead of undefined
//!   behaviour.
//! * [`MemAddr`] / [`Span`]: address newtypes.
//! * The deterministic heap of §2.2.4 of the paper: a [`SuperHeap`] handing
//!   out large blocks and per-thread [`ThreadHeap`]s with power-of-two size
//!   classes, free lists, and bump-pointer allocation.
//! * [`CanaryMap`] and canary helpers used by the heap-overflow detector
//!   (§4.1), and [`Quarantine`] used by the use-after-free detector (§4.2).
//! * [`MemSnapshot`]: byte-exact snapshot, restore and diff of the arena,
//!   used at epoch boundaries (§3.1) and by the Table 1 experiment.
//! * [`WatchRegistry`]: software watchpoints (at most four, mirroring the
//!   hardware debug-register limit) checked on every managed store during
//!   replay.
//!
//! # Example
//!
//! ```
//! use ireplayer_mem::{Arena, HeapConfig, SuperHeap, ThreadHeap};
//!
//! # fn main() -> Result<(), ireplayer_mem::MemError> {
//! let arena = Arena::new(8 << 20);
//! let config = HeapConfig::default();
//! let super_heap = SuperHeap::new(arena.span(), config.clone());
//! let mut heap = ThreadHeap::new(0, config);
//! let obj = heap.alloc(&arena, &super_heap, 64)?;
//! arena.write_u64(obj.payload, 0xdead_beef)?;
//! assert_eq!(arena.read_u64(obj.payload)?, 0xdead_beef);
//! heap.free(&arena, obj.payload)?;
//! # Ok(())
//! # }
//! ```

pub mod addr;
pub mod arena;
pub mod canary;
pub mod diff;
pub mod error;
pub mod globals;
pub mod heap;
pub mod quarantine;
pub mod size_class;
pub mod snapshot;
pub mod watchpoint;

pub use addr::{MemAddr, Span};
pub use arena::Arena;
pub use canary::CorruptedCanary;
pub use canary::{CanaryMap, CANARY_BYTE, CANARY_WORD};
pub use diff::DiffStats;
pub use error::MemError;
pub use globals::Globals;
pub use heap::{
    AllocRecord, Allocation, HeapConfig, HeapStats, SuperHeap, SuperHeapState, ThreadHeap, ThreadHeapState, HEADER_SIZE,
};
pub use quarantine::{Quarantine, QuarantineEntry, UafEvidence, POISON_PREFIX};
pub use size_class::{class_for, class_size, SizeClass, MAX_CLASS, MIN_ALLOC, NUM_CLASSES};
pub use snapshot::MemSnapshot;
pub use watchpoint::{WatchHit, WatchRegistry, Watchpoint, MAX_WATCHPOINTS};
