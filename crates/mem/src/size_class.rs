//! Power-of-two size classes for the deterministic heap (paper §2.2.4).
//!
//! "Inside each per-thread heap, objects are managed using power-of-two size
//! classes.  During allocations, each request will be aligned to the next
//! power-of-two size."

/// The smallest allocation size in bytes.  Requests below this are rounded
/// up, which keeps free-list links and object headers aligned.
pub const MIN_ALLOC: usize = 16;

/// The largest size class supported by a per-thread heap (4 MiB, the size of
/// one super-heap block in the paper).
pub const MAX_CLASS: usize = 4 * 1024 * 1024;

/// Number of distinct size classes: 16, 32, ..., 4 MiB.
pub const NUM_CLASSES: usize = (MAX_CLASS.trailing_zeros() - MIN_ALLOC.trailing_zeros() + 1) as usize;

/// Index of a power-of-two size class.
///
/// Class 0 holds 16-byte objects, class 1 holds 32-byte objects, and so on up
/// to [`MAX_CLASS`].
///
/// # Example
///
/// ```
/// use ireplayer_mem::{class_for, class_size};
///
/// let class = class_for(100).unwrap();
/// assert_eq!(class_size(class), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SizeClass(pub(crate) u8);

impl SizeClass {
    /// Returns the index of this class, in `0..NUM_CLASSES`.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Returns the object size of this class in bytes.
    pub fn size(self) -> usize {
        MIN_ALLOC << self.0
    }
}

/// Returns the size class whose object size is the smallest power of two
/// greater than or equal to `size`.
///
/// Returns `None` when the request exceeds [`MAX_CLASS`]; the caller reports
/// this as [`crate::MemError::AllocationTooLarge`].
pub fn class_for(size: usize) -> Option<SizeClass> {
    if size > MAX_CLASS {
        return None;
    }
    let rounded = size.max(MIN_ALLOC).next_power_of_two();
    let index = rounded.trailing_zeros() - MIN_ALLOC.trailing_zeros();
    Some(SizeClass(index as u8))
}

/// Returns the object size in bytes of size class `class`.
pub fn class_size(class: SizeClass) -> usize {
    class.size()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_up_to_power_of_two() {
        assert_eq!(class_for(1).unwrap().size(), MIN_ALLOC);
        assert_eq!(class_for(16).unwrap().size(), 16);
        assert_eq!(class_for(17).unwrap().size(), 32);
        assert_eq!(class_for(100).unwrap().size(), 128);
        assert_eq!(class_for(4096).unwrap().size(), 4096);
        assert_eq!(class_for(MAX_CLASS).unwrap().size(), MAX_CLASS);
        assert!(class_for(MAX_CLASS + 1).is_none());
    }

    #[test]
    fn class_indexes_are_dense() {
        assert_eq!(class_for(MIN_ALLOC).unwrap().index(), 0);
        assert_eq!(class_for(MAX_CLASS).unwrap().index(), NUM_CLASSES - 1);
        for i in 0..NUM_CLASSES {
            let size = MIN_ALLOC << i;
            assert_eq!(class_for(size).unwrap().index(), i);
            assert_eq!(class_size(SizeClass(i as u8)), size);
        }
    }

    #[test]
    fn zero_sized_requests_use_minimum_class() {
        assert_eq!(class_for(0).unwrap().size(), MIN_ALLOC);
    }
}
