//! Managed global variables.
//!
//! The original system checkpoints the globals of the application and of all
//! shared libraries by parsing `/proc/self/maps` and copying the writable
//! segments.  In the managed substrate, applications declare their globals
//! through this bump allocator at start-up; the region is part of the arena
//! and is therefore covered by the same snapshot/restore machinery used for
//! the heap.

use std::collections::HashMap;

use crate::addr::{MemAddr, Span};
use crate::error::MemError;

/// Allocator and name registry for the managed globals region.
///
/// # Example
///
/// ```
/// use ireplayer_mem::{Globals, MemAddr, Span};
///
/// # fn main() -> Result<(), ireplayer_mem::MemError> {
/// let mut globals = Globals::new(Span::new(MemAddr::new(64), 1024));
/// let counter = globals.define("counter", 8)?;
/// assert_eq!(globals.lookup("counter"), Some(Span::new(counter, 8)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Globals {
    region: Span,
    next: MemAddr,
    vars: HashMap<String, Span>,
}

impl Globals {
    /// Creates a globals allocator over `region`.
    pub fn new(region: Span) -> Self {
        Globals {
            next: region.addr.align_up(8),
            region,
            vars: HashMap::new(),
        }
    }

    /// Returns the region managed by this allocator.
    pub fn region(&self) -> Span {
        self.region
    }

    /// Number of bytes still available.
    pub fn remaining(&self) -> u64 {
        self.region.end().offset().saturating_sub(self.next.offset())
    }

    /// Defines a named global of `size` bytes, 8-byte aligned, and returns
    /// its address.  Defining a name twice returns the existing address if
    /// the size matches.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::GlobalsExhausted`] if the region cannot hold the
    /// variable.
    pub fn define(&mut self, name: &str, size: u64) -> Result<MemAddr, MemError> {
        if let Some(existing) = self.vars.get(name) {
            if existing.len == size {
                return Ok(existing.addr);
            }
        }
        let addr = self.next.align_up(8);
        let end = addr.wrapping_add(size);
        if end.offset() > self.region.end().offset() {
            return Err(MemError::GlobalsExhausted {
                requested: size as usize,
            });
        }
        self.next = end;
        self.vars.insert(name.to_owned(), Span::new(addr, size));
        Ok(addr)
    }

    /// Returns the span of the named global, if defined.
    pub fn lookup(&self, name: &str) -> Option<Span> {
        self.vars.get(name).copied()
    }

    /// Iterates over `(name, span)` pairs of every defined global.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Span)> {
        self.vars.iter().map(|(name, span)| (name.as_str(), *span))
    }

    /// Number of defined globals.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Returns `true` if no globals have been defined.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defines_are_aligned_and_disjoint() {
        let mut globals = Globals::new(Span::new(MemAddr::new(100), 1024));
        let a = globals.define("a", 3).unwrap();
        let b = globals.define("b", 8).unwrap();
        assert_eq!(a.offset() % 8, 0);
        assert_eq!(b.offset() % 8, 0);
        assert!(b.offset() >= a.offset() + 3);
        assert_eq!(globals.len(), 2);
        assert!(!globals.is_empty());
    }

    #[test]
    fn redefining_the_same_name_returns_the_same_address() {
        let mut globals = Globals::new(Span::new(MemAddr::new(64), 256));
        let a = globals.define("x", 8).unwrap();
        let b = globals.define("x", 8).unwrap();
        assert_eq!(a, b);
        assert_eq!(globals.len(), 1);
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut globals = Globals::new(Span::new(MemAddr::new(64), 32));
        globals.define("a", 16).unwrap();
        assert!(matches!(
            globals.define("b", 64),
            Err(MemError::GlobalsExhausted { .. })
        ));
    }

    #[test]
    fn lookup_and_iter_report_defined_variables() {
        let mut globals = Globals::new(Span::new(MemAddr::new(64), 256));
        let a = globals.define("counter", 8).unwrap();
        assert_eq!(globals.lookup("counter"), Some(Span::new(a, 8)));
        assert_eq!(globals.lookup("missing"), None);
        let names: Vec<&str> = globals.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["counter"]);
        assert!(globals.remaining() < 256);
    }
}
