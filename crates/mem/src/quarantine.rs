//! Quarantine of freed objects for use-after-free detection (paper §4.2).
//!
//! "iReplayer delays the re-allocation of freed objects by placing them into
//! per-thread quarantine lists ... fills the first 128 bytes of freed objects
//! with canary values.  These freed objects are released from the quarantine
//! list when the total size of quarantined objects is larger than the
//! user-defined setting."

use std::collections::VecDeque;

use crate::addr::MemAddr;
use crate::arena::Arena;
use crate::canary::CANARY_BYTE;
use crate::error::MemError;
use crate::size_class::SizeClass;

/// Number of bytes at the start of a freed object that are poisoned with the
/// canary byte, as in the paper.
pub const POISON_PREFIX: usize = 128;

/// A freed object waiting in quarantine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Payload address of the freed object.
    pub payload: MemAddr,
    /// Start of the slot (header address), needed to return the object to a
    /// free list once it leaves quarantine.
    pub slot_start: MemAddr,
    /// Size class of the slot.
    pub class: SizeClass,
    /// Size requested when the object was allocated.
    pub requested: usize,
    /// Opaque token identifying the free site (the runtime stores a call-site
    /// index here for reporting).
    pub free_site: u64,
}

/// Evidence that a quarantined (freed) object was written after being freed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UafEvidence {
    /// The quarantined object that was modified.
    pub entry: QuarantineEntry,
    /// First modified byte.
    pub first_bad_byte: MemAddr,
}

/// A per-thread quarantine list with a byte budget.
///
/// # Example
///
/// ```
/// use ireplayer_mem::{Arena, HeapConfig, Quarantine, SuperHeap, ThreadHeap};
///
/// # fn main() -> Result<(), ireplayer_mem::MemError> {
/// let arena = Arena::new(8 << 20);
/// let config = HeapConfig::default();
/// let super_heap = SuperHeap::new(arena.span(), config.clone());
/// let mut heap = ThreadHeap::new(0, config);
/// let mut quarantine = Quarantine::new(1 << 16);
///
/// let obj = heap.alloc(&arena, &super_heap, 64)?;
/// let record = heap.free(&arena, obj.payload)?;
/// quarantine.push(
///     &arena,
///     ireplayer_mem::QuarantineEntry {
///         payload: record.payload,
///         slot_start: obj.slot.addr,
///         class: record.class,
///         requested: record.requested,
///         free_site: 0,
///     },
/// )?;
/// // A use-after-free write is caught when the object leaves quarantine or
/// // when the detector scans at an epoch boundary.
/// arena.write_u64(obj.payload, 99)?;
/// assert_eq!(quarantine.check(&arena)?.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Quarantine {
    entries: VecDeque<QuarantineEntry>,
    total_bytes: usize,
    budget: usize,
}

impl Quarantine {
    /// Creates a quarantine that starts evicting once the total size of
    /// quarantined objects exceeds `budget` bytes.
    pub fn new(budget: usize) -> Self {
        Quarantine {
            entries: VecDeque::new(),
            total_bytes: 0,
            budget,
        }
    }

    /// Number of objects currently in quarantine.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no objects are quarantined.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total requested bytes of all quarantined objects.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Adds a freed object to the quarantine, poisoning its first
    /// [`POISON_PREFIX`] bytes (or the whole object if smaller).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the object lies outside the
    /// arena.
    pub fn push(&mut self, arena: &Arena, entry: QuarantineEntry) -> Result<(), MemError> {
        let poison = entry.requested.min(POISON_PREFIX);
        arena.fill(entry.payload, poison, CANARY_BYTE)?;
        self.total_bytes += entry.requested;
        self.entries.push_back(entry);
        Ok(())
    }

    /// Evicts the oldest objects until the total size fits the budget,
    /// checking each evicted object's poison bytes first.
    ///
    /// Returns the evicted entries (to be returned to a free list) together
    /// with any use-after-free evidence found.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if a quarantined object lies
    /// outside the arena.
    pub fn evict_to_budget(&mut self, arena: &Arena) -> Result<(Vec<QuarantineEntry>, Vec<UafEvidence>), MemError> {
        let mut evicted = Vec::new();
        let mut evidence = Vec::new();
        while self.total_bytes > self.budget {
            let Some(entry) = self.entries.pop_front() else {
                break;
            };
            self.total_bytes -= entry.requested;
            if let Some(bad) = Self::check_entry(arena, &entry)? {
                evidence.push(bad);
            }
            evicted.push(entry);
        }
        Ok((evicted, evidence))
    }

    /// Checks every quarantined object without evicting anything.  The
    /// use-after-free detector runs this at epoch boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if a quarantined object lies
    /// outside the arena.
    pub fn check(&self, arena: &Arena) -> Result<Vec<UafEvidence>, MemError> {
        let mut evidence = Vec::new();
        for entry in &self.entries {
            if let Some(bad) = Self::check_entry(arena, entry)? {
                evidence.push(bad);
            }
        }
        Ok(evidence)
    }

    /// Removes every entry, returning them so the caller can recycle the
    /// slots.  Used by epoch housekeeping when the detector is torn down.
    pub fn drain(&mut self) -> Vec<QuarantineEntry> {
        self.total_bytes = 0;
        self.entries.drain(..).collect()
    }

    /// Iterates over quarantined entries from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &QuarantineEntry> {
        self.entries.iter()
    }

    fn check_entry(arena: &Arena, entry: &QuarantineEntry) -> Result<Option<UafEvidence>, MemError> {
        let poison = entry.requested.min(POISON_PREFIX);
        let mut buf = vec![0u8; poison];
        arena.read_bytes(entry.payload, &mut buf)?;
        for (i, byte) in buf.iter().enumerate() {
            if *byte != CANARY_BYTE {
                return Ok(Some(UafEvidence {
                    entry: *entry,
                    first_bad_byte: entry.payload + i as u64,
                }));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::{HeapConfig, SuperHeap, ThreadHeap};

    fn setup() -> (Arena, SuperHeap, ThreadHeap) {
        let arena = Arena::new(1 << 20);
        let config = HeapConfig {
            block_size: 64 * 1024,
            canaries: false,
            canary_len: 8,
        };
        let super_heap = SuperHeap::new(arena.span(), config.clone());
        let heap = ThreadHeap::new(0, config);
        (arena, super_heap, heap)
    }

    fn entry_for(heap: &mut ThreadHeap, arena: &Arena, sh: &SuperHeap, size: usize) -> QuarantineEntry {
        let alloc = heap.alloc(arena, sh, size).unwrap();
        let record = heap.free(arena, alloc.payload).unwrap();
        QuarantineEntry {
            payload: record.payload,
            slot_start: alloc.slot.addr,
            class: record.class,
            requested: record.requested,
            free_site: 7,
        }
    }

    #[test]
    fn clean_quarantine_reports_nothing() {
        let (arena, sh, mut heap) = setup();
        let mut q = Quarantine::new(1 << 16);
        let entry = entry_for(&mut heap, &arena, &sh, 200);
        q.push(&arena, entry).unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.total_bytes(), 200);
        assert!(q.check(&arena).unwrap().is_empty());
    }

    #[test]
    fn write_after_free_is_detected() {
        let (arena, sh, mut heap) = setup();
        let mut q = Quarantine::new(1 << 16);
        let entry = entry_for(&mut heap, &arena, &sh, 200);
        q.push(&arena, entry).unwrap();
        arena.write_u8(entry.payload + 3, 0xff).unwrap();
        let evidence = q.check(&arena).unwrap();
        assert_eq!(evidence.len(), 1);
        assert_eq!(evidence[0].first_bad_byte, entry.payload + 3);
        assert_eq!(evidence[0].entry.free_site, 7);
    }

    #[test]
    fn writes_beyond_the_poison_prefix_are_not_flagged() {
        let (arena, sh, mut heap) = setup();
        let mut q = Quarantine::new(1 << 16);
        let entry = entry_for(&mut heap, &arena, &sh, 512);
        q.push(&arena, entry).unwrap();
        arena.write_u8(entry.payload + POISON_PREFIX as u64, 0xff).unwrap();
        assert!(q.check(&arena).unwrap().is_empty());
    }

    #[test]
    fn eviction_respects_the_budget_and_checks_poison() {
        let (arena, sh, mut heap) = setup();
        let mut q = Quarantine::new(300);
        // Allocate both objects before freeing either, so the two quarantine
        // entries cover distinct slots (a free/alloc pair would reuse the
        // same slot via the LIFO free list).
        let alloc_a = heap.alloc(&arena, &sh, 200).unwrap();
        let alloc_b = heap.alloc(&arena, &sh, 200).unwrap();
        let rec_a = heap.free(&arena, alloc_a.payload).unwrap();
        let rec_b = heap.free(&arena, alloc_b.payload).unwrap();
        let first = QuarantineEntry {
            payload: rec_a.payload,
            slot_start: alloc_a.slot.addr,
            class: rec_a.class,
            requested: rec_a.requested,
            free_site: 1,
        };
        let second = QuarantineEntry {
            payload: rec_b.payload,
            slot_start: alloc_b.slot.addr,
            class: rec_b.class,
            requested: rec_b.requested,
            free_site: 2,
        };
        q.push(&arena, first).unwrap();
        arena.write_u8(first.payload, 0).unwrap();
        q.push(&arena, second).unwrap();
        assert_eq!(q.total_bytes(), 400);
        let (evicted, evidence) = q.evict_to_budget(&arena).unwrap();
        // Oldest entry evicted first; its corruption is reported on the way out.
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].payload, first.payload);
        assert_eq!(evidence.len(), 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.total_bytes(), 200);
    }

    #[test]
    fn drain_empties_the_quarantine() {
        let (arena, sh, mut heap) = setup();
        let mut q = Quarantine::new(1 << 16);
        q.push(&arena, entry_for(&mut heap, &arena, &sh, 64)).unwrap();
        q.push(&arena, entry_for(&mut heap, &arena, &sh, 64)).unwrap();
        assert_eq!(q.iter().count(), 2);
        let drained = q.drain();
        assert_eq!(drained.len(), 2);
        assert!(q.is_empty());
        assert_eq!(q.total_bytes(), 0);
    }
}
