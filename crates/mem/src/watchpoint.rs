//! Software watchpoints used during diagnostic replays (paper §4).
//!
//! The original system installs hardware watchpoints via `perf_event_open`
//! on the addresses of corrupted canaries before a re-execution; writes that
//! touch a watched address trap, and the tool reports the faulting call
//! stack.  Hardware offers four debug registers, so "iReplayer can identify
//! root causes of four buffer overflows in one re-execution simultaneously".
//!
//! Here, watchpoints are checked on every managed store performed while a
//! replay is in progress.  The four-slot limit is kept so that the
//! multi-replay behaviour of the tools (more than four corrupted addresses
//! require additional replays) is preserved.

use crate::addr::{MemAddr, Span};
use crate::error::MemError;

/// Number of watchpoint slots, mirroring x86 debug registers DR0-DR3.
pub const MAX_WATCHPOINTS: usize = 4;

/// A single installed watchpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchpoint {
    /// Identifier of the slot holding this watchpoint (0..4).
    pub slot: u8,
    /// Watched address range.
    pub span: Span,
}

/// A write that touched a watched range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchHit {
    /// The watchpoint that fired.
    pub watchpoint: Watchpoint,
    /// The write access that triggered it.
    pub access: Span,
}

/// The set of installed watchpoints.
///
/// The registry itself is not synchronized; the runtime keeps it behind its
/// own lock and only consults it during replay, so that recording-phase
/// stores pay no cost (the paper only installs watchpoints for
/// re-executions).
///
/// # Example
///
/// ```
/// use ireplayer_mem::{MemAddr, Span, WatchRegistry};
///
/// # fn main() -> Result<(), ireplayer_mem::MemError> {
/// let mut watches = WatchRegistry::new();
/// watches.install(Span::new(MemAddr::new(100), 8))?;
/// assert!(watches.check_write(Span::new(MemAddr::new(104), 4)).is_some());
/// assert!(watches.check_write(Span::new(MemAddr::new(96), 4)).is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct WatchRegistry {
    slots: [Option<Watchpoint>; MAX_WATCHPOINTS],
}

impl WatchRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        WatchRegistry::default()
    }

    /// Installs a watchpoint over `span` in the first free slot.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoWatchpointSlot`] when all four slots are in
    /// use; the caller schedules the remaining addresses for a later replay,
    /// as the paper does.
    pub fn install(&mut self, span: Span) -> Result<Watchpoint, MemError> {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.is_none() {
                let wp = Watchpoint { slot: i as u8, span };
                *slot = Some(wp);
                return Ok(wp);
            }
        }
        Err(MemError::NoWatchpointSlot)
    }

    /// Removes the watchpoint in `slot`, returning whether one was present.
    pub fn remove(&mut self, slot: u8) -> bool {
        let idx = usize::from(slot);
        if idx < MAX_WATCHPOINTS {
            self.slots[idx].take().is_some()
        } else {
            false
        }
    }

    /// Removes every watchpoint.
    pub fn clear(&mut self) {
        self.slots = [None; MAX_WATCHPOINTS];
    }

    /// Number of installed watchpoints.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Returns `true` when no watchpoints are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the installed watchpoints.
    pub fn installed(&self) -> impl Iterator<Item = Watchpoint> + '_ {
        self.slots.iter().filter_map(|s| *s)
    }

    /// Checks whether a write to `access` touches a watched range and
    /// returns the corresponding hit.
    ///
    /// Only the first matching watchpoint is reported, as with hardware
    /// debug registers where a single trap is delivered per instruction.
    pub fn check_write(&self, access: Span) -> Option<WatchHit> {
        if access.is_empty() {
            return None;
        }
        self.slots.iter().flatten().find_map(|wp| {
            if wp.span.overlaps(&access) {
                Some(WatchHit {
                    watchpoint: *wp,
                    access,
                })
            } else {
                None
            }
        })
    }

    /// Convenience wrapper over [`WatchRegistry::check_write`] for a write of
    /// `len` bytes at `addr`.
    pub fn check_write_at(&self, addr: MemAddr, len: usize) -> Option<WatchHit> {
        self.check_write(Span::new(addr, len as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn installs_up_to_four_watchpoints() {
        let mut reg = WatchRegistry::new();
        for i in 0..4u64 {
            let wp = reg.install(Span::new(MemAddr::new(100 + 16 * i), 8)).unwrap();
            assert_eq!(wp.slot as u64, i);
        }
        assert_eq!(reg.len(), 4);
        assert!(matches!(
            reg.install(Span::new(MemAddr::new(500), 8)),
            Err(MemError::NoWatchpointSlot)
        ));
    }

    #[test]
    fn detects_overlapping_writes_only() {
        let mut reg = WatchRegistry::new();
        reg.install(Span::new(MemAddr::new(100), 8)).unwrap();
        assert!(reg.check_write_at(MemAddr::new(100), 1).is_some());
        assert!(reg.check_write_at(MemAddr::new(107), 1).is_some());
        assert!(reg.check_write_at(MemAddr::new(96), 8).is_some());
        assert!(reg.check_write_at(MemAddr::new(108), 8).is_none());
        assert!(reg.check_write_at(MemAddr::new(92), 8).is_none());
        assert!(reg.check_write(Span::new(MemAddr::new(100), 0)).is_none());
    }

    #[test]
    fn remove_frees_the_slot_for_reuse() {
        let mut reg = WatchRegistry::new();
        let wp = reg.install(Span::new(MemAddr::new(100), 8)).unwrap();
        assert!(reg.remove(wp.slot));
        assert!(!reg.remove(wp.slot));
        assert!(!reg.remove(200));
        assert!(reg.is_empty());
        let again = reg.install(Span::new(MemAddr::new(200), 8)).unwrap();
        assert_eq!(again.slot, 0);
    }

    #[test]
    fn clear_removes_everything() {
        let mut reg = WatchRegistry::new();
        reg.install(Span::new(MemAddr::new(100), 8)).unwrap();
        reg.install(Span::new(MemAddr::new(200), 8)).unwrap();
        assert_eq!(reg.installed().count(), 2);
        reg.clear();
        assert!(reg.is_empty());
    }

    #[test]
    fn hit_reports_the_access_and_the_watchpoint() {
        let mut reg = WatchRegistry::new();
        let wp = reg.install(Span::new(MemAddr::new(64), 8)).unwrap();
        let hit = reg.check_write_at(MemAddr::new(60), 8).unwrap();
        assert_eq!(hit.watchpoint, wp);
        assert_eq!(hit.access, Span::new(MemAddr::new(60), 8));
    }
}
