//! The deterministic heap of paper §2.2.4.
//!
//! iReplayer avoids recording memory allocations entirely by making the heap
//! layout a pure function of (a) per-thread program order and (b) the
//! recorded order of a small number of global lock acquisitions:
//!
//! * a **super heap** holds large blocks (4 MB in the paper); a per-thread
//!   heap fetches a new block under a global lock whose acquisition order is
//!   recorded and replayed;
//! * each **per-thread heap** serves allocations from power-of-two size
//!   classes, first from its free list, otherwise by bumping a pointer inside
//!   its current block;
//! * a free always returns the object to the heap of the *freeing* thread,
//!   so cross-thread frees only influence that thread's subsequent
//!   allocations, which again follow program order;
//! * two live threads never share a per-thread heap.
//!
//! The runtime crate owns the global lock and records its acquisitions; this
//! module implements the allocation mechanics and object headers.

use std::collections::HashMap;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::addr::{MemAddr, Span};
use crate::arena::Arena;
use crate::canary::CANARY_BYTE;
use crate::error::MemError;
use crate::size_class::{class_for, SizeClass, MAX_CLASS, NUM_CLASSES};

/// Size in bytes of the per-object header stored in the arena just before
/// the payload.
pub const HEADER_SIZE: u64 = 16;

/// Magic value stored in every object header, used to validate frees.
const HEADER_MAGIC: u32 = 0x51e9_a110;

/// Object states stored in the header.
const STATE_LIVE: u8 = 1;
const STATE_FREED: u8 = 2;

/// Configuration shared by the super heap and all per-thread heaps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapConfig {
    /// Size of a super-heap block in bytes.  The paper uses 4 MiB; tests use
    /// smaller blocks to exercise block exhaustion cheaply.
    pub block_size: u64,
    /// When `true`, every allocation is followed by a canary region of
    /// `canary_len` bytes (used by the overflow detector, §4.1).
    pub canaries: bool,
    /// Length of the canary region in bytes.
    pub canary_len: usize,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            block_size: 4 * 1024 * 1024,
            canaries: false,
            canary_len: 8,
        }
    }
}

impl HeapConfig {
    /// Returns a configuration with canaries enabled.
    pub fn with_canaries(mut self) -> Self {
        self.canaries = true;
        self
    }

    /// Returns a configuration with the given super-heap block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is smaller than the largest size class plus
    /// header overhead would allow for at least one minimum allocation.
    pub fn with_block_size(mut self, block_size: u64) -> Self {
        assert!(block_size >= 1024, "block size must be at least 1 KiB");
        self.block_size = block_size;
        self
    }
}

/// A single allocation returned by [`ThreadHeap::alloc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Address of the first payload byte (what the application sees).
    pub payload: MemAddr,
    /// The whole slot: header, payload, canary and padding.
    pub slot: Span,
    /// Size requested by the application.
    pub requested: usize,
    /// Size class the request was rounded into.
    pub class: SizeClass,
    /// Span of the canary region, when canaries are enabled.
    pub canary: Option<Span>,
}

/// Metadata returned by [`ThreadHeap::free`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocRecord {
    /// Address of the first payload byte.
    pub payload: MemAddr,
    /// Size requested at allocation time.
    pub requested: usize,
    /// Size class of the slot.
    pub class: SizeClass,
    /// Thread that performed the original allocation.
    pub allocating_thread: u32,
}

/// Counters describing heap activity, reported in [`crate::HeapStats`] form
/// by the runtime at the end of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapStats {
    /// Number of successful allocations.
    pub allocations: u64,
    /// Number of successful frees.
    pub frees: u64,
    /// Number of allocations served from a free list.
    pub free_list_hits: u64,
    /// Number of blocks fetched from the super heap.
    pub blocks_fetched: u64,
    /// Total bytes requested by the application.
    pub bytes_requested: u64,
}

/// The super heap: a bump allocator over the arena's heap region that hands
/// out fixed-size blocks to per-thread heaps.
///
/// The internal lock only protects block fetches (one per 4 MB of
/// allocation, per the paper), not individual allocations.  The runtime
/// records the acquisition order of its own global lock around
/// [`SuperHeap::fetch_block`] so that block assignment replays identically.
#[derive(Debug)]
pub struct SuperHeap {
    inner: Mutex<SuperHeapState>,
    config: HeapConfig,
}

/// Snapshot of the super heap's allocation cursor, captured at epoch begin
/// and restored on rollback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuperHeapState {
    /// Next address a block will be carved from.
    pub next: MemAddr,
    /// End of the heap region.
    pub end: MemAddr,
    /// Number of blocks handed out so far.
    pub blocks_handed: u64,
}

impl SuperHeap {
    /// Creates a super heap that carves blocks out of `region`.
    pub fn new(region: Span, config: HeapConfig) -> Self {
        SuperHeap {
            inner: Mutex::new(SuperHeapState {
                next: region.addr.align_up(16),
                end: region.end(),
                blocks_handed: 0,
            }),
            config,
        }
    }

    /// Fetches one block.  The caller (the runtime) is responsible for
    /// serializing and recording calls so that the assignment of blocks to
    /// threads is identical during replay.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] when the heap region is exhausted.
    pub fn fetch_block(&self) -> Result<Span, MemError> {
        let mut state = self.inner.lock();
        let start = state.next;
        let end = start.wrapping_add(self.config.block_size);
        if end.offset() > state.end.offset() {
            return Err(MemError::OutOfMemory {
                requested: self.config.block_size as usize,
            });
        }
        state.next = end;
        state.blocks_handed += 1;
        Ok(Span::new(start, self.config.block_size))
    }

    /// Returns the configuration this super heap was created with.
    pub fn config(&self) -> &HeapConfig {
        &self.config
    }

    /// Captures the allocation cursor for an epoch checkpoint.
    pub fn state(&self) -> SuperHeapState {
        *self.inner.lock()
    }

    /// Restores a previously captured allocation cursor (rollback, §3.4).
    pub fn restore(&self, state: SuperHeapState) {
        *self.inner.lock() = state;
    }

    /// Address one past the last byte ever handed out; snapshots only need
    /// to copy arena bytes up to this high-water mark.
    pub fn high_water(&self) -> MemAddr {
        self.inner.lock().next
    }
}

/// A per-thread heap (paper §2.2.4).
///
/// Not `Sync`: each heap is owned by exactly one live thread.  The runtime
/// checkpoints and restores the heap's [`ThreadHeapState`] at epoch
/// boundaries so that allocator metadata rolls back together with memory
/// contents.
#[derive(Debug)]
pub struct ThreadHeap {
    thread: u32,
    config: HeapConfig,
    free_lists: Vec<Vec<MemAddr>>,
    bump: MemAddr,
    bump_remaining: u64,
    stats: HeapStats,
    /// Live allocations made *or freed* through this heap, used to validate
    /// frees and to answer size queries.  Keyed by payload address.
    live: HashMap<MemAddr, AllocRecord>,
}

/// Checkpointable state of a [`ThreadHeap`].
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadHeapState {
    free_lists: Vec<Vec<MemAddr>>,
    bump: MemAddr,
    bump_remaining: u64,
    stats: HeapStats,
    live: HashMap<MemAddr, AllocRecord>,
}

impl ThreadHeap {
    /// Creates an empty heap owned by thread `thread`.
    pub fn new(thread: u32, config: HeapConfig) -> Self {
        ThreadHeap {
            thread,
            config,
            free_lists: vec![Vec::new(); NUM_CLASSES],
            bump: MemAddr::NULL,
            bump_remaining: 0,
            stats: HeapStats::default(),
            live: HashMap::new(),
        }
    }

    /// Returns the id of the owning thread.
    pub fn thread(&self) -> u32 {
        self.thread
    }

    /// Returns accumulated allocation statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Size (including header and canary) of the slot needed for `size`
    /// requested bytes, and the size class it maps to.
    fn slot_class(&self, size: usize) -> Result<SizeClass, MemError> {
        let canary = if self.config.canaries {
            self.config.canary_len
        } else {
            0
        };
        let needed = size
            .checked_add(HEADER_SIZE as usize + canary)
            .ok_or(MemError::AllocationTooLarge {
                requested: size,
                max: MAX_CLASS,
            })?;
        class_for(needed).ok_or(MemError::AllocationTooLarge {
            requested: size,
            max: MAX_CLASS,
        })
    }

    /// Returns `true` if allocating `size` bytes would require fetching a
    /// new block from the super heap.
    ///
    /// The runtime uses this to perform the fetch itself under its recorded
    /// global lock (so that block-to-thread assignment replays identically)
    /// and then hand the block over with [`ThreadHeap::add_block`].
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AllocationTooLarge`] if the request exceeds the
    /// largest size class.
    pub fn needs_block(&self, size: usize) -> Result<bool, MemError> {
        let class = self.slot_class(size)?;
        Ok(self.free_lists[class.index()].is_empty() && self.bump_remaining < class.size() as u64)
    }

    /// Hands a freshly fetched super-heap block to this heap's bump
    /// allocator.  Any remainder of the previous block is abandoned, as in
    /// the paper's design.
    pub fn add_block(&mut self, block: Span) {
        self.bump = block.addr;
        self.bump_remaining = block.len;
        self.stats.blocks_fetched += 1;
    }

    /// Allocates `size` bytes.
    ///
    /// The free list of the size class is consulted first (LIFO); otherwise
    /// the request is served by the bump pointer, fetching a new block from
    /// the super heap if the current block cannot hold the slot.
    ///
    /// # Errors
    ///
    /// * [`MemError::AllocationTooLarge`] if the request exceeds the largest
    ///   size class.
    /// * [`MemError::OutOfMemory`] if the super heap is exhausted.
    /// * [`MemError::OutOfBounds`] if header or canary writes fault, which
    ///   indicates arena mis-configuration.
    pub fn alloc(&mut self, arena: &Arena, super_heap: &SuperHeap, size: usize) -> Result<Allocation, MemError> {
        let class = self.slot_class(size)?;
        let slot_size = class.size() as u64;
        let slot_start = if let Some(addr) = self.free_lists[class.index()].pop() {
            self.stats.free_list_hits += 1;
            addr
        } else {
            if self.bump_remaining < slot_size {
                let block = super_heap.fetch_block()?;
                self.stats.blocks_fetched += 1;
                self.bump = block.addr;
                self.bump_remaining = block.len;
                if self.bump_remaining < slot_size {
                    return Err(MemError::OutOfMemory { requested: size });
                }
            }
            let addr = self.bump;
            self.bump = self.bump + slot_size;
            self.bump_remaining -= slot_size;
            addr
        };

        let payload = slot_start + HEADER_SIZE;
        self.write_header(arena, slot_start, class, size, STATE_LIVE)?;
        let canary = if self.config.canaries {
            let canary_addr = payload + size as u64;
            arena.fill(canary_addr, self.config.canary_len, CANARY_BYTE)?;
            Some(Span::new(canary_addr, self.config.canary_len as u64))
        } else {
            None
        };

        self.stats.allocations += 1;
        self.stats.bytes_requested += size as u64;
        self.live.insert(
            payload,
            AllocRecord {
                payload,
                requested: size,
                class,
                allocating_thread: self.thread,
            },
        );

        Ok(Allocation {
            payload,
            slot: Span::new(slot_start, slot_size),
            requested: size,
            class,
            canary,
        })
    }

    /// Frees the allocation whose payload starts at `payload`.
    ///
    /// Per the paper, the object is returned to *this* heap's free list (the
    /// heap of the freeing thread) regardless of which thread allocated it;
    /// the caller is responsible for routing cross-thread frees here.
    ///
    /// Returns the record of the freed allocation so that detectors can
    /// quarantine it or report on it.
    ///
    /// # Errors
    ///
    /// * [`MemError::InvalidFree`] if `payload` is not the start of a known
    ///   allocation.
    /// * [`MemError::DoubleFree`] if the allocation was already freed.
    pub fn free(&mut self, arena: &Arena, payload: MemAddr) -> Result<AllocRecord, MemError> {
        let (record, slot_start) = self.retire(arena, payload)?;
        // Head insertion: "each deallocated object will be inserted into the
        // head of its corresponding free list".
        self.free_lists[record.class.index()].push(slot_start);
        Ok(record)
    }

    /// Validates and retires an allocation *without* returning its slot to a
    /// free list.  The use-after-free detector uses this to move freed
    /// objects into a quarantine; [`ThreadHeap::recycle`] returns the slot
    /// once it leaves quarantine.
    ///
    /// Returns the allocation record and the slot's start address.
    ///
    /// # Errors
    ///
    /// Same as [`ThreadHeap::free`].
    pub fn retire(&mut self, arena: &Arena, payload: MemAddr) -> Result<(AllocRecord, MemAddr), MemError> {
        if payload.offset() <= HEADER_SIZE {
            return Err(MemError::InvalidFree { addr: payload });
        }
        let slot_start = payload - HEADER_SIZE;
        let (magic, class_idx, state, _requested) = self.read_header(arena, slot_start)?;
        if magic != HEADER_MAGIC {
            return Err(MemError::InvalidFree { addr: payload });
        }
        if state == STATE_FREED {
            return Err(MemError::DoubleFree { addr: payload });
        }
        if state != STATE_LIVE || usize::from(class_idx) >= NUM_CLASSES {
            return Err(MemError::InvalidFree { addr: payload });
        }
        let record = self.live.remove(&payload).unwrap_or(AllocRecord {
            payload,
            requested: _requested as usize,
            class: SizeClass(class_idx),
            allocating_thread: u32::MAX,
        });
        self.mark_state(arena, slot_start, STATE_FREED)?;
        self.stats.frees += 1;
        Ok((record, slot_start))
    }

    /// Re-inserts a slot previously removed by the quarantine, without
    /// re-validating its header.  Used by the use-after-free detector when an
    /// object leaves quarantine and becomes genuinely reusable.
    pub fn recycle(&mut self, class: SizeClass, slot_start: MemAddr) {
        self.free_lists[class.index()].push(slot_start);
    }

    /// Looks up the allocation record for a live payload address.
    pub fn lookup(&self, payload: MemAddr) -> Option<&AllocRecord> {
        self.live.get(&payload)
    }

    /// Returns `true` if `addr` falls within any live allocation of this
    /// heap, along with the payload address of that allocation.
    pub fn containing_allocation(&self, addr: MemAddr) -> Option<AllocRecord> {
        self.live
            .values()
            .find(|rec| {
                addr.offset() >= rec.payload.offset() && addr.offset() < rec.payload.offset() + rec.requested as u64
            })
            .copied()
    }

    /// Iterates over the live allocations made through this heap.
    pub fn live_allocations(&self) -> impl Iterator<Item = &AllocRecord> {
        self.live.values()
    }

    /// Captures the heap metadata for an epoch checkpoint.
    pub fn state(&self) -> ThreadHeapState {
        ThreadHeapState {
            free_lists: self.free_lists.clone(),
            bump: self.bump,
            bump_remaining: self.bump_remaining,
            stats: self.stats,
            live: self.live.clone(),
        }
    }

    /// Restores heap metadata captured by [`ThreadHeap::state`] (rollback,
    /// §3.4).  Arena contents (headers, canaries) are restored separately by
    /// the memory snapshot.
    pub fn restore(&mut self, state: ThreadHeapState) {
        self.free_lists = state.free_lists;
        self.bump = state.bump;
        self.bump_remaining = state.bump_remaining;
        self.stats = state.stats;
        self.live = state.live;
    }

    fn write_header(
        &self,
        arena: &Arena,
        slot_start: MemAddr,
        class: SizeClass,
        requested: usize,
        state: u8,
    ) -> Result<(), MemError> {
        arena.write_u32(slot_start, HEADER_MAGIC)?;
        arena.write_u8(slot_start + 4, class.index() as u8)?;
        arena.write_u8(slot_start + 5, state)?;
        arena.write_u16(slot_start + 6, 0)?;
        arena.write_u32(slot_start + 8, requested as u32)?;
        arena.write_u32(slot_start + 12, self.thread)?;
        Ok(())
    }

    fn mark_state(&self, arena: &Arena, slot_start: MemAddr, state: u8) -> Result<(), MemError> {
        arena.write_u8(slot_start + 5, state)
    }

    fn read_header(&self, arena: &Arena, slot_start: MemAddr) -> Result<(u32, u8, u8, u32), MemError> {
        if slot_start.is_null() || slot_start.offset() < HEADER_SIZE {
            return Err(MemError::InvalidFree {
                addr: slot_start + HEADER_SIZE,
            });
        }
        let magic = arena.read_u32(slot_start)?;
        let class_idx = arena.read_u8(slot_start + 4)?;
        let state = arena.read_u8(slot_start + 5)?;
        let requested = arena.read_u32(slot_start + 8)?;
        Ok((magic, class_idx, state, requested))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(canaries: bool) -> (Arena, SuperHeap, ThreadHeap) {
        let arena = Arena::new(1 << 20);
        let config = HeapConfig {
            block_size: 64 * 1024,
            canaries,
            canary_len: 8,
        };
        let super_heap = SuperHeap::new(arena.span(), config.clone());
        let heap = ThreadHeap::new(1, config);
        (arena, super_heap, heap)
    }

    #[test]
    fn alloc_and_free_round_trip() {
        let (arena, sh, mut heap) = setup(false);
        let a = heap.alloc(&arena, &sh, 100).unwrap();
        assert_eq!(a.requested, 100);
        assert_eq!(a.class.size(), 128);
        assert!(a.canary.is_none());
        arena.write_u64(a.payload, 42).unwrap();
        let record = heap.free(&arena, a.payload).unwrap();
        assert_eq!(record.requested, 100);
        assert_eq!(record.allocating_thread, 1);
        assert_eq!(heap.stats().allocations, 1);
        assert_eq!(heap.stats().frees, 1);
    }

    #[test]
    fn freed_object_is_reused_lifo() {
        let (arena, sh, mut heap) = setup(false);
        let a = heap.alloc(&arena, &sh, 48).unwrap();
        let b = heap.alloc(&arena, &sh, 48).unwrap();
        assert_ne!(a.payload, b.payload);
        heap.free(&arena, a.payload).unwrap();
        heap.free(&arena, b.payload).unwrap();
        // LIFO: b freed last, so b is reused first.
        let c = heap.alloc(&arena, &sh, 48).unwrap();
        assert_eq!(c.payload, b.payload);
        let d = heap.alloc(&arena, &sh, 48).unwrap();
        assert_eq!(d.payload, a.payload);
        assert_eq!(heap.stats().free_list_hits, 2);
    }

    #[test]
    fn identical_allocation_sequences_produce_identical_addresses() {
        let run = || {
            let (arena, sh, mut heap) = setup(false);
            let mut addrs = Vec::new();
            let mut live = Vec::new();
            for i in 0..200usize {
                let a = heap.alloc(&arena, &sh, 16 + (i * 7) % 300).unwrap();
                addrs.push(a.payload);
                if i % 3 == 0 {
                    live.push(a.payload);
                } else if let Some(victim) = live.pop() {
                    heap.free(&arena, victim).unwrap();
                    addrs.push(victim);
                }
            }
            addrs
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn double_free_and_invalid_free_are_detected() {
        let (arena, sh, mut heap) = setup(false);
        let a = heap.alloc(&arena, &sh, 32).unwrap();
        heap.free(&arena, a.payload).unwrap();
        assert!(matches!(heap.free(&arena, a.payload), Err(MemError::DoubleFree { .. })));
        assert!(matches!(
            heap.free(&arena, a.payload + 8),
            Err(MemError::InvalidFree { .. }) | Err(MemError::DoubleFree { .. })
        ));
        assert!(matches!(
            heap.free(&arena, MemAddr::new(8)),
            Err(MemError::InvalidFree { .. })
        ));
    }

    #[test]
    fn canaries_are_planted_after_the_requested_bytes() {
        let (arena, sh, mut heap) = setup(true);
        let a = heap.alloc(&arena, &sh, 20).unwrap();
        let canary = a.canary.expect("canary expected");
        assert_eq!(canary.addr, a.payload + 20);
        assert_eq!(canary.len, 8);
        for i in 0..8u64 {
            assert_eq!(arena.read_u8(canary.addr + i).unwrap(), CANARY_BYTE);
        }
        // Writing within the requested size leaves the canary intact.
        arena.write_bytes(a.payload, &[0u8; 20]).unwrap();
        assert_eq!(arena.read_u8(canary.addr).unwrap(), CANARY_BYTE);
    }

    #[test]
    fn block_exhaustion_fetches_new_blocks() {
        let (arena, sh, mut heap) = setup(false);
        // Each slot is 64 KiB-class after rounding; force several block fetches.
        for _ in 0..12 {
            heap.alloc(&arena, &sh, 20 * 1024).unwrap();
        }
        assert!(heap.stats().blocks_fetched >= 6);
        assert_eq!(sh.state().blocks_handed, heap.stats().blocks_fetched);
    }

    #[test]
    fn super_heap_exhaustion_reports_out_of_memory() {
        let arena = Arena::new(64 * 1024);
        let config = HeapConfig {
            block_size: 16 * 1024,
            canaries: false,
            canary_len: 8,
        };
        let sh = SuperHeap::new(arena.span(), config.clone());
        let mut heap = ThreadHeap::new(0, config);
        let mut count = 0;
        loop {
            match heap.alloc(&arena, &sh, 8 * 1024) {
                Ok(_) => count += 1,
                Err(MemError::OutOfMemory { .. }) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(count < 100, "allocation should eventually fail");
        }
        assert!(count > 0);
    }

    #[test]
    fn oversized_allocations_are_rejected() {
        let (arena, sh, mut heap) = setup(false);
        assert!(matches!(
            heap.alloc(&arena, &sh, MAX_CLASS + 1),
            Err(MemError::AllocationTooLarge { .. })
        ));
    }

    #[test]
    fn state_snapshot_restores_allocator_metadata() {
        let (arena, sh, mut heap) = setup(false);
        let a = heap.alloc(&arena, &sh, 64).unwrap();
        let checkpoint = heap.state();
        let sh_checkpoint = sh.state();
        let mem = arena.dump_prefix(sh.high_water().as_usize());

        // Post-checkpoint activity...
        let b = heap.alloc(&arena, &sh, 64).unwrap();
        heap.free(&arena, a.payload).unwrap();
        assert_ne!(heap.state(), checkpoint);

        // ...is undone by rollback.
        heap.restore(checkpoint.clone());
        sh.restore(sh_checkpoint);
        arena.restore_prefix(&mem).unwrap();
        assert_eq!(heap.state(), checkpoint);

        // Re-executing the same operations lands on the same addresses.
        let b2 = heap.alloc(&arena, &sh, 64).unwrap();
        assert_eq!(b2.payload, b.payload);
        heap.free(&arena, a.payload).unwrap();
    }

    #[test]
    fn lookup_and_containing_allocation() {
        let (arena, sh, mut heap) = setup(false);
        let a = heap.alloc(&arena, &sh, 64).unwrap();
        assert_eq!(heap.lookup(a.payload).unwrap().requested, 64);
        assert!(heap.lookup(a.payload + 1).is_none());
        let hit = heap.containing_allocation(a.payload + 63).unwrap();
        assert_eq!(hit.payload, a.payload);
        assert!(heap.containing_allocation(a.payload + 64).is_none());
        assert_eq!(heap.live_allocations().count(), 1);
    }

    #[test]
    fn cross_thread_free_goes_to_the_freeing_heap() {
        let arena = Arena::new(1 << 20);
        let config = HeapConfig {
            block_size: 64 * 1024,
            canaries: false,
            canary_len: 8,
        };
        let sh = SuperHeap::new(arena.span(), config.clone());
        let mut heap1 = ThreadHeap::new(1, config.clone());
        let mut heap2 = ThreadHeap::new(2, config);
        let a = heap1.alloc(&arena, &sh, 64).unwrap();
        // Thread 2 frees the object allocated by thread 1: it lands on
        // thread 2's free list and is reused by thread 2's next allocation.
        heap2.free(&arena, a.payload).unwrap();
        let b = heap2.alloc(&arena, &sh, 64).unwrap();
        assert_eq!(b.payload, a.payload);
    }
}
