//! Canary values and the canary placement map (paper §4.1).
//!
//! The heap-overflow detector "places canaries (e.g. known random values)
//! adjacent to allocated objects in the original execution" and "uses a
//! bitmap internally to record the placement of canaries".  An overwritten
//! canary is incontrovertible evidence of an overflow; the detector then
//! replays the epoch with watchpoints on the corrupted addresses.

use std::collections::BTreeMap;

use crate::addr::{MemAddr, Span};
use crate::arena::Arena;
use crate::error::MemError;

/// The byte value used to fill canary regions.
pub const CANARY_BYTE: u8 = 0x7e;

/// An eight-byte canary word (`CANARY_BYTE` repeated).
pub const CANARY_WORD: u64 = u64::from_le_bytes([CANARY_BYTE; 8]);

/// Record of canary placements, keyed by address.
///
/// The paper uses a bitmap over the heap; a sorted map keyed by address gives
/// the same "where did I plant canaries?" query while also remembering the
/// length of each canary region and the allocation it guards.
///
/// # Example
///
/// ```
/// use ireplayer_mem::{Arena, CanaryMap, MemAddr};
///
/// # fn main() -> Result<(), ireplayer_mem::MemError> {
/// let arena = Arena::new(256);
/// let mut map = CanaryMap::new();
/// map.plant(&arena, MemAddr::new(64), 8, MemAddr::new(32))?;
/// assert!(map.check(&arena)?.is_empty());
/// arena.write_u8(MemAddr::new(66), 0)?; // simulate an overflow
/// assert_eq!(map.check(&arena)?.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CanaryMap {
    entries: BTreeMap<MemAddr, CanaryEntry>,
}

#[derive(Debug, Clone)]
struct CanaryEntry {
    len: usize,
    guarded: MemAddr,
}

/// A canary region found to be corrupted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptedCanary {
    /// Span of the canary region.
    pub span: Span,
    /// First corrupted byte within the region.
    pub first_bad_byte: MemAddr,
    /// Start address of the allocation this canary guards.
    pub guarded: MemAddr,
}

impl CanaryMap {
    /// Creates an empty canary map.
    pub fn new() -> Self {
        CanaryMap::default()
    }

    /// Number of live canary regions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no canaries are planted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fills `[addr, addr + len)` with the canary byte and records the
    /// placement.  `guarded` is the allocation the canary protects, used in
    /// bug reports.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the region is outside the arena.
    pub fn plant(&mut self, arena: &Arena, addr: MemAddr, len: usize, guarded: MemAddr) -> Result<(), MemError> {
        arena.fill(addr, len, CANARY_BYTE)?;
        self.entries.insert(addr, CanaryEntry { len, guarded });
        Ok(())
    }

    /// Removes the canary planted at `addr`, if any, without checking it.
    pub fn remove(&mut self, addr: MemAddr) -> bool {
        self.entries.remove(&addr).is_some()
    }

    /// Checks a single canary region and removes it from the map.
    ///
    /// Returns `Ok(Some(..))` if the region was corrupted, `Ok(None)` if it
    /// was intact or not present.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the region is outside the arena.
    pub fn check_and_remove(&mut self, arena: &Arena, addr: MemAddr) -> Result<Option<CorruptedCanary>, MemError> {
        match self.entries.remove(&addr) {
            None => Ok(None),
            Some(entry) => Self::check_entry(arena, addr, &entry),
        }
    }

    /// Scans every planted canary and returns all corrupted regions.
    ///
    /// The heap-overflow detector runs this at every epoch boundary.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if a region is outside the arena,
    /// which indicates runtime corruption rather than an application bug.
    pub fn check(&self, arena: &Arena) -> Result<Vec<CorruptedCanary>, MemError> {
        let mut corrupted = Vec::new();
        for (addr, entry) in &self.entries {
            if let Some(bad) = Self::check_entry(arena, *addr, entry)? {
                corrupted.push(bad);
            }
        }
        Ok(corrupted)
    }

    /// Removes every canary.  Used when the detector is disabled mid-run and
    /// by epoch housekeeping when the guarded allocations are reclaimed.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates over `(address, length, guarded allocation)` of every planted
    /// canary.
    pub fn iter(&self) -> impl Iterator<Item = (MemAddr, usize, MemAddr)> + '_ {
        self.entries
            .iter()
            .map(|(addr, entry)| (*addr, entry.len, entry.guarded))
    }

    fn check_entry(arena: &Arena, addr: MemAddr, entry: &CanaryEntry) -> Result<Option<CorruptedCanary>, MemError> {
        let mut buf = vec![0u8; entry.len];
        arena.read_bytes(addr, &mut buf)?;
        for (i, byte) in buf.iter().enumerate() {
            if *byte != CANARY_BYTE {
                return Ok(Some(CorruptedCanary {
                    span: Span::new(addr, entry.len as u64),
                    first_bad_byte: addr + i as u64,
                    guarded: entry.guarded,
                }));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intact_canaries_pass_the_scan() {
        let arena = Arena::new(512);
        let mut map = CanaryMap::new();
        map.plant(&arena, MemAddr::new(100), 8, MemAddr::new(92)).unwrap();
        map.plant(&arena, MemAddr::new(200), 16, MemAddr::new(180)).unwrap();
        assert_eq!(map.len(), 2);
        assert!(map.check(&arena).unwrap().is_empty());
    }

    #[test]
    fn corrupted_canary_reports_first_bad_byte_and_guarded_object() {
        let arena = Arena::new(512);
        let mut map = CanaryMap::new();
        map.plant(&arena, MemAddr::new(100), 8, MemAddr::new(92)).unwrap();
        arena.write_u8(MemAddr::new(103), 0x00).unwrap();
        let bad = map.check(&arena).unwrap();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].first_bad_byte, MemAddr::new(103));
        assert_eq!(bad[0].guarded, MemAddr::new(92));
        assert_eq!(bad[0].span, Span::new(MemAddr::new(100), 8));
    }

    #[test]
    fn check_and_remove_consumes_the_entry() {
        let arena = Arena::new(256);
        let mut map = CanaryMap::new();
        map.plant(&arena, MemAddr::new(64), 8, MemAddr::new(32)).unwrap();
        arena.write_u8(MemAddr::new(64), 1).unwrap();
        let first = map.check_and_remove(&arena, MemAddr::new(64)).unwrap();
        assert!(first.is_some());
        assert!(map.is_empty());
        let second = map.check_and_remove(&arena, MemAddr::new(64)).unwrap();
        assert!(second.is_none());
    }

    #[test]
    fn remove_and_clear_forget_placements() {
        let arena = Arena::new(256);
        let mut map = CanaryMap::new();
        map.plant(&arena, MemAddr::new(64), 8, MemAddr::new(32)).unwrap();
        map.plant(&arena, MemAddr::new(96), 8, MemAddr::new(80)).unwrap();
        assert!(map.remove(MemAddr::new(64)));
        assert!(!map.remove(MemAddr::new(64)));
        assert_eq!(map.iter().count(), 1);
        map.clear();
        assert!(map.is_empty());
    }

    #[test]
    fn canary_word_matches_canary_byte() {
        assert_eq!(CANARY_WORD.to_le_bytes(), [CANARY_BYTE; 8]);
    }
}
