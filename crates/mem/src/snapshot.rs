//! Byte-exact snapshots of the managed arena (paper §3.1).
//!
//! "Checkpointing memory states is performed by copying all writable memory
//! to a separate block of memory, such as the heap and globals for both the
//! application and its dynamically-linked libraries."  The snapshot is taken
//! at every epoch begin and restored on rollback; the Table 1 experiment
//! diffs the memory image at the end of the original execution against the
//! image at the end of the replay.

use crate::arena::Arena;
use crate::diff::DiffStats;
use crate::error::MemError;

/// A copy of the arena's contents up to a high-water mark.
///
/// Snapshots operate on one [`Arena`] *view*: on a partitioned arena a
/// capture reads only the owning partition's bytes and a restore writes
/// only them, so per-session rollback never disturbs a neighbouring
/// tenant's memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemSnapshot {
    data: Vec<u8>,
}

impl MemSnapshot {
    /// Captures the first `len` bytes of the arena.
    ///
    /// The runtime passes the super heap's high-water mark so that untouched
    /// memory is not copied, mirroring the paper's "only writable memory"
    /// optimization.
    pub fn capture(arena: &Arena, len: usize) -> Self {
        MemSnapshot {
            data: arena.dump_prefix(len),
        }
    }

    /// Number of bytes captured.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Restores the captured bytes into the arena (rollback, §3.4).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::SnapshotSizeMismatch`] if the snapshot is larger
    /// than the arena.
    pub fn restore(&self, arena: &Arena) -> Result<(), MemError> {
        arena.restore_prefix(&self.data)
    }

    /// Compares the snapshot against the arena's current contents and
    /// returns byte-level difference statistics.
    ///
    /// This is the measurement behind Table 1: after a replay, an identical
    /// re-execution produces zero differing bytes.
    pub fn diff(&self, arena: &Arena) -> DiffStats {
        let current = arena.dump_prefix(self.data.len());
        let mut different = 0usize;
        for (a, b) in self.data.iter().zip(current.iter()) {
            if a != b {
                different += 1;
            }
        }
        DiffStats {
            bytes_compared: self.data.len(),
            bytes_different: different,
        }
    }

    /// Read-only access to the captured bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::MemAddr;

    #[test]
    fn capture_restore_round_trip() {
        let arena = Arena::new(1024);
        arena.write_bytes(MemAddr::new(1), b"original state").unwrap();
        let snap = MemSnapshot::capture(&arena, 256);
        assert_eq!(snap.len(), 256);
        assert!(!snap.is_empty());

        arena.write_bytes(MemAddr::new(1), b"mutated  state").unwrap();
        assert!(snap.diff(&arena).bytes_different > 0);

        snap.restore(&arena).unwrap();
        let diff = snap.diff(&arena);
        assert_eq!(diff.bytes_different, 0);
        assert_eq!(diff.bytes_compared, 256);
        let mut buf = [0u8; 14];
        arena.read_bytes(MemAddr::new(1), &mut buf).unwrap();
        assert_eq!(&buf, b"original state");
    }

    #[test]
    fn diff_counts_only_the_captured_prefix() {
        let arena = Arena::new(1024);
        let snap = MemSnapshot::capture(&arena, 64);
        // A change beyond the captured prefix is invisible to the diff.
        arena.write_u8(MemAddr::new(100), 9).unwrap();
        assert_eq!(snap.diff(&arena).bytes_different, 0);
        // A change inside the prefix is counted.
        arena.write_u8(MemAddr::new(10), 9).unwrap();
        assert_eq!(snap.diff(&arena).bytes_different, 1);
    }

    #[test]
    fn restore_into_smaller_arena_fails() {
        let big = Arena::new(1024);
        let small = Arena::new(16);
        let snap = MemSnapshot::capture(&big, 512);
        assert!(matches!(
            snap.restore(&small),
            Err(MemError::SnapshotSizeMismatch { .. })
        ));
    }

    #[test]
    fn bytes_exposes_the_raw_copy() {
        let arena = Arena::new(64);
        arena.write_u8(MemAddr::new(1), 0xaa).unwrap();
        let snap = MemSnapshot::capture(&arena, 8);
        assert_eq!(snap.bytes()[1], 0xaa);
    }

    #[test]
    fn rollback_of_one_partition_leaves_the_neighbour_intact() {
        let parts = Arena::partitioned(128, 2);
        parts[0].write_bytes(MemAddr::new(1), b"epoch begin").unwrap();
        parts[1].write_bytes(MemAddr::new(1), b"neighbour").unwrap();
        let snap = MemSnapshot::capture(&parts[0], 64);

        // Partition 0 mutates, partition 1 keeps working concurrently.
        parts[0].write_bytes(MemAddr::new(1), b"mutated  ! ").unwrap();
        parts[1].write_bytes(MemAddr::new(20), b"more work").unwrap();

        // Rolling partition 0 back restores only its own bytes.
        snap.restore(&parts[0]).unwrap();
        let mut buf = [0u8; 11];
        parts[0].read_bytes(MemAddr::new(1), &mut buf).unwrap();
        assert_eq!(&buf, b"epoch begin");
        let mut kept = [0u8; 9];
        parts[1].read_bytes(MemAddr::new(1), &mut kept).unwrap();
        assert_eq!(&kept, b"neighbour");
        parts[1].read_bytes(MemAddr::new(20), &mut kept).unwrap();
        assert_eq!(&kept, b"more work");
    }
}
