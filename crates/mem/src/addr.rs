//! Address and span newtypes for the managed arena.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// An address inside the managed arena.
///
/// Addresses are byte offsets from the start of the arena.  Because the
/// arena replaces the process heap of the original system, these offsets are
/// the analogue of virtual addresses: the deterministic allocator guarantees
/// that the same allocation sequence produces the same `MemAddr` values in
/// the original execution and in every re-execution.
///
/// # Example
///
/// ```
/// use ireplayer_mem::MemAddr;
///
/// let a = MemAddr::new(64);
/// assert_eq!(a.offset(), 64);
/// assert_eq!((a + 8).offset(), 72);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct MemAddr(u64);

impl MemAddr {
    /// The null address.  Like the C null pointer, it is never returned by
    /// the allocator and dereferencing it faults.
    pub const NULL: MemAddr = MemAddr(0);

    /// Creates an address from a byte offset.
    pub const fn new(offset: u64) -> Self {
        MemAddr(offset)
    }

    /// Returns the byte offset of this address.
    pub const fn offset(self) -> u64 {
        self.0
    }

    /// Returns the byte offset as a `usize`.
    ///
    /// # Panics
    ///
    /// Panics if the offset does not fit in `usize` (impossible on 64-bit
    /// hosts).
    pub fn as_usize(self) -> usize {
        usize::try_from(self.0).expect("arena offset exceeds usize")
    }

    /// Returns `true` if this is the null address.
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Returns the address advanced by `bytes`, saturating at `u64::MAX`.
    pub const fn wrapping_add(self, bytes: u64) -> Self {
        MemAddr(self.0.wrapping_add(bytes))
    }

    /// Returns this address aligned up to `align`, which must be a power of
    /// two.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn align_up(self, align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        MemAddr((self.0 + align - 1) & !(align - 1))
    }
}

impl fmt::Display for MemAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl Add<u64> for MemAddr {
    type Output = MemAddr;

    fn add(self, rhs: u64) -> MemAddr {
        MemAddr(self.0 + rhs)
    }
}

impl Sub<u64> for MemAddr {
    type Output = MemAddr;

    fn sub(self, rhs: u64) -> MemAddr {
        MemAddr(self.0 - rhs)
    }
}

impl Sub<MemAddr> for MemAddr {
    type Output = u64;

    fn sub(self, rhs: MemAddr) -> u64 {
        self.0 - rhs.0
    }
}

impl From<MemAddr> for u64 {
    fn from(addr: MemAddr) -> u64 {
        addr.0
    }
}

impl From<u64> for MemAddr {
    fn from(offset: u64) -> MemAddr {
        MemAddr(offset)
    }
}

/// A contiguous span of managed memory.
///
/// # Example
///
/// ```
/// use ireplayer_mem::{MemAddr, Span};
///
/// let span = Span::new(MemAddr::new(16), 32);
/// assert!(span.contains(MemAddr::new(47)));
/// assert!(!span.contains(MemAddr::new(48)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Span {
    /// First byte of the span.
    pub addr: MemAddr,
    /// Length of the span in bytes.
    pub len: u64,
}

impl Span {
    /// Creates a span starting at `addr` covering `len` bytes.
    pub const fn new(addr: MemAddr, len: u64) -> Self {
        Span { addr, len }
    }

    /// Returns the first address past the end of this span.
    pub const fn end(&self) -> MemAddr {
        MemAddr::new(self.addr.offset() + self.len)
    }

    /// Returns `true` if `addr` falls inside the span.
    pub const fn contains(&self, addr: MemAddr) -> bool {
        addr.offset() >= self.addr.offset() && addr.offset() < self.addr.offset() + self.len
    }

    /// Returns `true` if the two spans share at least one byte.
    pub const fn overlaps(&self, other: &Span) -> bool {
        self.addr.offset() < other.addr.offset() + other.len && other.addr.offset() < self.addr.offset() + self.len
    }

    /// Returns `true` if the span has zero length.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.addr, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_address_is_null() {
        assert!(MemAddr::NULL.is_null());
        assert!(!MemAddr::new(1).is_null());
        assert_eq!(MemAddr::default(), MemAddr::NULL);
    }

    #[test]
    fn arithmetic_round_trips() {
        let a = MemAddr::new(100);
        assert_eq!(a + 28, MemAddr::new(128));
        assert_eq!(MemAddr::new(128) - 28, a);
        assert_eq!(MemAddr::new(128) - a, 28);
        assert_eq!(u64::from(a), 100);
        assert_eq!(MemAddr::from(100u64), a);
    }

    #[test]
    fn align_up_rounds_to_power_of_two() {
        assert_eq!(MemAddr::new(0).align_up(8), MemAddr::new(0));
        assert_eq!(MemAddr::new(1).align_up(8), MemAddr::new(8));
        assert_eq!(MemAddr::new(8).align_up(8), MemAddr::new(8));
        assert_eq!(MemAddr::new(9).align_up(16), MemAddr::new(16));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn align_up_rejects_non_power_of_two() {
        let _ = MemAddr::new(1).align_up(12);
    }

    #[test]
    fn span_contains_and_overlaps() {
        let s = Span::new(MemAddr::new(16), 16);
        assert_eq!(s.end(), MemAddr::new(32));
        assert!(s.contains(MemAddr::new(16)));
        assert!(s.contains(MemAddr::new(31)));
        assert!(!s.contains(MemAddr::new(32)));
        assert!(!s.contains(MemAddr::new(15)));

        let t = Span::new(MemAddr::new(31), 4);
        let u = Span::new(MemAddr::new(32), 4);
        assert!(s.overlaps(&t));
        assert!(!s.overlaps(&u));
        assert!(!u.overlaps(&s));
        assert!(Span::new(MemAddr::new(0), 0).is_empty());
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(MemAddr::new(255).to_string(), "0xff");
        assert_eq!(Span::new(MemAddr::new(16), 16).to_string(), "[0x10, 0x20)");
    }
}
