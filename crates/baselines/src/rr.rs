//! The rr-style baseline (Mozilla rr; §5.3 and §7.1 of the paper).
//!
//! rr achieves identical replay by running all threads of the recorded
//! process on a single core, context-switching them under its control and
//! trapping their system calls.  Its recording overhead therefore comes from
//! two sources: the complete loss of parallelism, and a per-event trap cost.
//!
//! On the managed substrate the same effect is obtained by (a) running the
//! workload with every memory access serialized through one global token --
//! the single-core, one-thread-at-a-time execution model -- and (b) charging
//! a small trap cost per simulated scheduling quantum.  The benchmark
//! harness combines this instrument with a single-worker configuration (see
//! [`crate::configs`]); EXPERIMENTS.md discusses how the measured factor
//! relates to the paper's 17x on a 16-core machine.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use ireplayer::{Instrument, MemAddr, ThreadId};

/// Number of managed memory accesses per simulated scheduling quantum.
const QUANTUM_ACCESSES: u64 = 64;

/// Cost, in iterations of a small spin, charged when a quantum expires
/// (models rr's context switch + ptrace stop).
const TRAP_SPIN: u64 = 400;

/// The serializing instrument emulating rr's single-core execution.
#[derive(Debug, Default)]
pub struct RrEmulator {
    /// The single "core": whoever holds it runs; everyone else waits.
    core: Mutex<()>,
    accesses: AtomicU64,
    switches: AtomicU64,
}

impl RrEmulator {
    /// Creates an emulator.
    pub fn new() -> std::sync::Arc<Self> {
        std::sync::Arc::new(RrEmulator::default())
    }

    /// Number of simulated context switches performed.
    pub fn context_switches(&self) -> u64 {
        self.switches.load(Ordering::Relaxed)
    }

    /// Number of serialized memory accesses observed.
    pub fn accesses(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }

    fn serialize(&self) {
        // Take the core for the duration of the access.
        let _core = self.core.lock();
        let count = self.accesses.fetch_add(1, Ordering::Relaxed);
        if count % QUANTUM_ACCESSES == 0 {
            // Quantum expired: pay the trap / context-switch cost.
            self.switches.fetch_add(1, Ordering::Relaxed);
            let mut acc = 0u64;
            for i in 0..TRAP_SPIN {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
        }
    }
}

impl Instrument for RrEmulator {
    fn on_store(&self, _thread: ThreadId, _addr: MemAddr, _len: usize) {
        self.serialize();
    }

    fn on_load(&self, _thread: ThreadId, _addr: MemAddr, _len: usize) {
        self.serialize();
    }

    fn on_branch(&self, _thread: ThreadId, _edge: u32) {
        self.serialize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_and_counts_accesses() {
        let rr = RrEmulator::new();
        for _ in 0..200 {
            rr.on_store(ThreadId(0), MemAddr::new(8), 8);
            rr.on_load(ThreadId(1), MemAddr::new(8), 8);
        }
        rr.on_branch(ThreadId(0), 3);
        assert_eq!(rr.accesses(), 401);
        assert!(rr.context_switches() >= 401 / QUANTUM_ACCESSES);
    }
}
