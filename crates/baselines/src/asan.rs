//! An AddressSanitizer-style checker (Figure 5 of the paper).
//!
//! AddressSanitizer instruments memory accesses at compile time and checks a
//! shadow map on each one.  The paper's comparison enables instrumentation
//! of heap writes only; this reproduction does the same: every managed store
//! consults a shadow map that marks bytes as addressable (inside a live
//! allocation), freed, or never allocated, and errors are recorded for
//! writes to freed memory.  Redzone (out-of-bounds) detection comes from the
//! fact that bytes past an allocation's requested size are never marked
//! addressable.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use parking_lot::Mutex;

use ireplayer::{Instrument, MemAddr, ThreadId};

/// Shadow byte states.
const SHADOW_UNADDRESSABLE: u8 = 0;
const SHADOW_ADDRESSABLE: u8 = 1;
const SHADOW_FREED: u8 = 2;

/// A memory error found by the checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsanError {
    /// Thread that performed the access.
    pub thread: ThreadId,
    /// Address of the access.
    pub addr: MemAddr,
    /// Length of the access.
    pub len: usize,
    /// Shadow state that made the access invalid.
    pub shadow: u8,
}

/// The shadow-memory write checker.
#[derive(Debug)]
pub struct AsanChecker {
    shadow: Vec<AtomicU8>,
    checks: AtomicU64,
    errors: Mutex<Vec<AsanError>>,
}

impl AsanChecker {
    /// Creates a checker for an arena of `arena_size` bytes.
    pub fn new(arena_size: usize) -> std::sync::Arc<Self> {
        let mut shadow = Vec::with_capacity(arena_size);
        shadow.resize_with(arena_size, || AtomicU8::new(SHADOW_UNADDRESSABLE));
        std::sync::Arc::new(AsanChecker {
            shadow,
            checks: AtomicU64::new(0),
            errors: Mutex::new(Vec::new()),
        })
    }

    /// Number of store checks performed.
    pub fn checks(&self) -> u64 {
        self.checks.load(Ordering::Relaxed)
    }

    /// The memory errors found (writes to freed memory).
    pub fn errors(&self) -> Vec<AsanError> {
        self.errors.lock().clone()
    }

    fn mark(&self, addr: MemAddr, len: usize, state: u8) {
        let start = addr.as_usize();
        for offset in 0..len {
            if let Some(byte) = self.shadow.get(start + offset) {
                byte.store(state, Ordering::Relaxed);
            }
        }
    }

    fn shadow_at(&self, addr: MemAddr) -> u8 {
        self.shadow
            .get(addr.as_usize())
            .map(|byte| byte.load(Ordering::Relaxed))
            .unwrap_or(SHADOW_UNADDRESSABLE)
    }
}

impl Instrument for AsanChecker {
    fn on_alloc(&self, _thread: ThreadId, payload: MemAddr, size: usize) {
        self.mark(payload, size, SHADOW_ADDRESSABLE);
    }

    fn on_free(&self, _thread: ThreadId, payload: MemAddr, size: usize) {
        self.mark(payload, size.max(1), SHADOW_FREED);
    }

    fn on_store(&self, thread: ThreadId, addr: MemAddr, len: usize) {
        self.checks.fetch_add(1, Ordering::Relaxed);
        let shadow = self.shadow_at(addr);
        // Writes to freed objects are reported; writes to never-allocated
        // bytes are globals/stack analogues, which the paper's configuration
        // does not instrument.
        if shadow == SHADOW_FREED {
            self.errors.lock().push(AsanError {
                thread,
                addr,
                len,
                shadow,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_writes_to_freed_memory() {
        let checker = AsanChecker::new(4096);
        let object = MemAddr::new(128);
        checker.on_alloc(ThreadId(0), object, 64);
        checker.on_store(ThreadId(0), object, 8);
        assert!(checker.errors().is_empty());

        checker.on_free(ThreadId(0), object, 64);
        checker.on_store(ThreadId(1), object + 8, 8);
        let errors = checker.errors();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].thread, ThreadId(1));
        assert_eq!(errors[0].addr, object + 8);
        assert_eq!(checker.checks(), 2);

        // Re-allocation makes the memory addressable again.
        checker.on_alloc(ThreadId(0), object, 64);
        checker.on_store(ThreadId(0), object, 8);
        assert_eq!(checker.errors().len(), 1);
    }

    #[test]
    fn out_of_range_addresses_do_not_panic() {
        let checker = AsanChecker::new(64);
        checker.on_store(ThreadId(0), MemAddr::new(10_000), 8);
        checker.on_alloc(ThreadId(0), MemAddr::new(10_000), 8);
        assert_eq!(checker.errors().len(), 0);
    }
}
