//! Ball-Larus efficient path profiling, used by the CLAP baseline.
//!
//! CLAP instruments every function so that, at run time, each thread only
//! maintains a single path counter per function invocation; the counter
//! value uniquely identifies the acyclic path taken.  This module implements
//! the classic Ball-Larus edge-numbering algorithm on an explicit control
//! flow graph: assign to each edge a value such that the sum of edge values
//! along any entry-to-exit acyclic path is unique and dense in
//! `[0, num_paths)`.

use std::collections::HashMap;

/// A directed acyclic control-flow graph (back edges are assumed to have
/// been removed by the standard loop transformation).
#[derive(Debug, Clone, Default)]
pub struct Cfg {
    /// Adjacency list: `edges[from]` lists the successor blocks.
    edges: Vec<Vec<usize>>,
}

impl Cfg {
    /// Creates a CFG with `blocks` basic blocks and no edges.  Block 0 is
    /// the entry; the block with no successors is the exit.
    pub fn new(blocks: usize) -> Self {
        Cfg {
            edges: vec![Vec::new(); blocks],
        }
    }

    /// Adds an edge between two blocks.
    ///
    /// # Panics
    ///
    /// Panics if either block is out of range or the edge goes backwards
    /// (the graph must be acyclic with blocks in topological order).
    pub fn add_edge(&mut self, from: usize, to: usize) {
        assert!(from < self.edges.len() && to < self.edges.len(), "block out of range");
        assert!(from < to, "blocks must be supplied in topological order");
        self.edges[from].push(to);
    }

    /// Number of basic blocks.
    pub fn blocks(&self) -> usize {
        self.edges.len()
    }

    /// Successors of a block.
    pub fn successors(&self, block: usize) -> &[usize] {
        &self.edges[block]
    }
}

/// The result of Ball-Larus numbering: per-edge increments and the number
/// of distinct acyclic paths.
#[derive(Debug, Clone)]
pub struct BallLarus {
    increments: HashMap<(usize, usize), u64>,
    num_paths: u64,
}

impl BallLarus {
    /// Runs the numbering on an acyclic CFG whose blocks are in topological
    /// order (entry = 0, exit = last block with no successors).
    pub fn number(cfg: &Cfg) -> Self {
        let n = cfg.blocks();
        // numpaths(v) = 1 if v is the exit, else sum over successors.
        let mut num_paths = vec![0u64; n];
        let mut increments = HashMap::new();
        for v in (0..n).rev() {
            if cfg.successors(v).is_empty() {
                num_paths[v] = 1;
            } else {
                let mut total = 0u64;
                for (i, w) in cfg.successors(v).iter().enumerate() {
                    // Val(e_i) = sum of numpaths of earlier successors.
                    let increment = cfg.successors(v)[..i].iter().map(|earlier| num_paths[*earlier]).sum();
                    increments.insert((v, *w), increment);
                    total += num_paths[*w];
                }
                num_paths[v] = total;
            }
        }
        BallLarus {
            increments,
            num_paths: num_paths.first().copied().unwrap_or(0),
        }
    }

    /// Number of distinct entry-to-exit paths.
    pub fn num_paths(&self) -> u64 {
        self.num_paths
    }

    /// The increment recorded when traversing an edge.
    pub fn increment(&self, from: usize, to: usize) -> u64 {
        self.increments.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Computes the path identifier of a concrete entry-to-exit path.
    pub fn path_id(&self, path: &[usize]) -> u64 {
        path.windows(2).map(|pair| self.increment(pair[0], pair[1])).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The diamond-with-a-tail CFG from the Ball-Larus paper:
    /// 0 -> {1, 2}, 1 -> 3, 2 -> 3, 3 -> {4, 5}, 4 -> 5.
    fn example_cfg() -> Cfg {
        let mut cfg = Cfg::new(6);
        cfg.add_edge(0, 1);
        cfg.add_edge(0, 2);
        cfg.add_edge(1, 3);
        cfg.add_edge(2, 3);
        cfg.add_edge(3, 4);
        cfg.add_edge(3, 5);
        cfg.add_edge(4, 5);
        cfg
    }

    #[test]
    fn counts_paths_and_assigns_dense_unique_ids() {
        let cfg = example_cfg();
        let numbering = BallLarus::number(&cfg);
        assert_eq!(numbering.num_paths(), 4);

        let paths: Vec<Vec<usize>> = vec![
            vec![0, 1, 3, 4, 5],
            vec![0, 1, 3, 5],
            vec![0, 2, 3, 4, 5],
            vec![0, 2, 3, 5],
        ];
        let mut ids: Vec<u64> = paths.iter().map(|p| numbering.path_id(p)).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "path identifiers must be unique");
        assert!(ids.iter().all(|id| *id < 4), "identifiers must be dense");
    }

    #[test]
    fn straight_line_code_has_one_path() {
        let mut cfg = Cfg::new(3);
        cfg.add_edge(0, 1);
        cfg.add_edge(1, 2);
        let numbering = BallLarus::number(&cfg);
        assert_eq!(numbering.num_paths(), 1);
        assert_eq!(numbering.path_id(&[0, 1, 2]), 0);
    }

    #[test]
    #[should_panic(expected = "topological")]
    fn back_edges_are_rejected() {
        let mut cfg = Cfg::new(2);
        cfg.add_edge(1, 0);
    }
}
