//! The systems-under-test of Tables 3 and Figure 5, expressed as runtime
//! configurations plus optional instruments.

use std::sync::Arc;

use ireplayer::{AllocatorMode, Config, ConfigBuilder, Error, Instrument, RunMode, Runtime};

use crate::asan::AsanChecker;
use crate::clap::ClapRecorder;
use crate::rr::RrEmulator;

/// The systems compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemUnderTest {
    /// Default library: no recording, global-lock allocator (the "pthreads"
    /// baseline every row of Table 3 is normalized to).
    Baseline,
    /// iReplayer's allocator without recording ("IR-Alloc").
    IrAlloc,
    /// Full iReplayer recording.
    IReplayer,
    /// iReplayer recording plus the overflow and use-after-free detectors
    /// ("iReplayer (OF+DP)", Figure 5).
    IReplayerDetectors,
    /// The CLAP-style path recorder.
    Clap,
    /// The rr-style serializing recorder.
    Rr,
    /// The AddressSanitizer-style checker (Figure 5).
    AddressSanitizer,
}

impl SystemUnderTest {
    /// The label used in the printed tables.
    pub fn label(self) -> &'static str {
        match self {
            SystemUnderTest::Baseline => "baseline",
            SystemUnderTest::IrAlloc => "IR-Alloc",
            SystemUnderTest::IReplayer => "iReplayer",
            SystemUnderTest::IReplayerDetectors => "iReplayer(OF+DP)",
            SystemUnderTest::Clap => "CLAP",
            SystemUnderTest::Rr => "RR",
            SystemUnderTest::AddressSanitizer => "AddressSanitizer",
        }
    }

    /// The systems of Table 3, in column order.
    pub fn table3() -> Vec<SystemUnderTest> {
        vec![
            SystemUnderTest::Baseline,
            SystemUnderTest::IrAlloc,
            SystemUnderTest::IReplayer,
            SystemUnderTest::Clap,
            SystemUnderTest::Rr,
        ]
    }

    /// The systems of Figure 5, in series order (plus the baseline used for
    /// normalization).
    pub fn figure5() -> Vec<SystemUnderTest> {
        vec![
            SystemUnderTest::Baseline,
            SystemUnderTest::IReplayer,
            SystemUnderTest::IReplayerDetectors,
            SystemUnderTest::AddressSanitizer,
        ]
    }
}

/// A fully assembled benchmark configuration: the runtime configuration and
/// the instrument to attach, if any.
pub struct BenchConfig {
    /// Which system this is.
    pub system: SystemUnderTest,
    /// The runtime configuration.
    pub config: Config,
    /// Instrument to attach (CLAP, rr, ASan).
    pub instrument: Option<Arc<dyn Instrument>>,
    /// Whether the detection hooks (overflow + use-after-free) should be
    /// attached by the harness.
    pub attach_detectors: bool,
}

impl BenchConfig {
    /// Builds the configuration for a system, starting from common sizing
    /// parameters supplied by the harness.
    ///
    /// # Errors
    ///
    /// Returns an [`ireplayer::ErrorKind::InvalidConfig`] error if the sizing parameters are
    /// inconsistent.
    pub fn assemble(system: SystemUnderTest, base: ConfigBuilder) -> Result<BenchConfig, Error> {
        let (config, instrument, attach_detectors): (Config, Option<Arc<dyn Instrument>>, bool) = match system {
            SystemUnderTest::Baseline => (
                base.mode(RunMode::Passthrough)
                    .allocator(AllocatorMode::GlobalLock)
                    .build()?,
                None,
                false,
            ),
            SystemUnderTest::IrAlloc => (
                base.mode(RunMode::Passthrough)
                    .allocator(AllocatorMode::PerThread)
                    .build()?,
                None,
                false,
            ),
            SystemUnderTest::IReplayer => (
                base.mode(RunMode::Record).allocator(AllocatorMode::PerThread).build()?,
                None,
                false,
            ),
            SystemUnderTest::IReplayerDetectors => (
                base.mode(RunMode::Record)
                    .allocator(AllocatorMode::PerThread)
                    .canaries(true)
                    .quarantine_bytes(256 * 1024)
                    .build()?,
                None,
                true,
            ),
            SystemUnderTest::Clap => {
                let config = base
                    .mode(RunMode::Passthrough)
                    .allocator(AllocatorMode::GlobalLock)
                    .build()?;
                (config, Some(ClapRecorder::new() as Arc<dyn Instrument>), false)
            }
            SystemUnderTest::Rr => {
                let config = base.mode(RunMode::Record).allocator(AllocatorMode::PerThread).build()?;
                (config, Some(RrEmulator::new() as Arc<dyn Instrument>), false)
            }
            SystemUnderTest::AddressSanitizer => {
                let config = base
                    .mode(RunMode::Passthrough)
                    .allocator(AllocatorMode::GlobalLock)
                    .build()?;
                let arena = config.arena_size;
                (config, Some(AsanChecker::new(arena) as Arc<dyn Instrument>), false)
            }
        };
        Ok(BenchConfig {
            system,
            config,
            instrument,
            attach_detectors,
        })
    }

    /// Creates a runtime for this configuration with the instrument already
    /// attached.  The harness adds detector hooks when
    /// [`BenchConfig::attach_detectors`] is set.
    ///
    /// # Errors
    ///
    /// Returns the runtime-creation error, if any.
    pub fn runtime(&self) -> Result<Runtime, Error> {
        let runtime = Runtime::new(self.config.clone())?;
        if let Some(instrument) = &self.instrument {
            runtime.set_instrument(Arc::clone(instrument));
        }
        Ok(runtime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ConfigBuilder {
        Config::builder().arena_size(4 << 20).heap_block_size(128 << 10)
    }

    #[test]
    fn every_system_assembles() {
        for system in [
            SystemUnderTest::Baseline,
            SystemUnderTest::IrAlloc,
            SystemUnderTest::IReplayer,
            SystemUnderTest::IReplayerDetectors,
            SystemUnderTest::Clap,
            SystemUnderTest::Rr,
            SystemUnderTest::AddressSanitizer,
        ] {
            let bench = BenchConfig::assemble(system, base()).unwrap();
            assert_eq!(bench.system, system);
            assert!(!system.label().is_empty());
            let _runtime = bench.runtime().unwrap();
        }
    }

    #[test]
    fn table_and_figure_lists_have_the_expected_columns() {
        assert_eq!(SystemUnderTest::table3().len(), 5);
        assert_eq!(SystemUnderTest::figure5().len(), 4);
    }

    #[test]
    fn recording_modes_match_the_paper() {
        let baseline = BenchConfig::assemble(SystemUnderTest::Baseline, base()).unwrap();
        assert_eq!(baseline.config.mode, RunMode::Passthrough);
        assert_eq!(baseline.config.allocator, AllocatorMode::GlobalLock);
        let ir = BenchConfig::assemble(SystemUnderTest::IReplayer, base()).unwrap();
        assert_eq!(ir.config.mode, RunMode::Record);
        assert_eq!(ir.config.allocator, AllocatorMode::PerThread);
        let detectors = BenchConfig::assemble(SystemUnderTest::IReplayerDetectors, base()).unwrap();
        assert!(detectors.config.canaries);
        assert!(detectors.attach_detectors);
    }
}
