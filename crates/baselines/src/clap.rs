//! The CLAP-style recorder (Huang et al., PLDI 2013), re-implemented the way
//! the iReplayer authors did for their comparison (§5.3): record
//! thread-local execution paths at run time (one event per branch / function
//! boundary, Ball-Larus style), then reconstruct a feasible cross-thread
//! schedule offline.

use std::collections::HashMap;

use parking_lot::Mutex;

use ireplayer::{Instrument, MemAddr, ThreadId};

/// One entry of a thread-local path log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathEvent {
    /// A branch edge was taken (Ball-Larus increment).
    Branch(u32),
    /// A function was entered or left.
    Function { id: u32, enter: bool },
}

/// The run-time half of CLAP: per-thread path logs fed by the
/// instrumentation callbacks.
///
/// Recording is intentionally heavier than iReplayer's: every branch of a
/// CPU-intensive workload produces a log append, which is exactly why CLAP's
/// overhead in Table 3 grows with the branch density of the application.
#[derive(Debug, Default)]
pub struct ClapRecorder {
    logs: Mutex<HashMap<ThreadId, Vec<PathEvent>>>,
}

impl ClapRecorder {
    /// Creates an empty recorder.
    pub fn new() -> std::sync::Arc<Self> {
        std::sync::Arc::new(ClapRecorder::default())
    }

    /// Total number of recorded path events across all threads.
    pub fn total_events(&self) -> usize {
        self.logs.lock().values().map(Vec::len).sum()
    }

    /// The recorded per-thread path logs.
    pub fn logs(&self) -> HashMap<ThreadId, Vec<PathEvent>> {
        self.logs.lock().clone()
    }
}

impl Instrument for ClapRecorder {
    fn on_branch(&self, thread: ThreadId, edge: u32) {
        self.logs
            .lock()
            .entry(thread)
            .or_default()
            .push(PathEvent::Branch(edge));
    }

    fn on_function(&self, thread: ThreadId, func: u32, enter: bool) {
        self.logs
            .lock()
            .entry(thread)
            .or_default()
            .push(PathEvent::Function { id: func, enter });
    }

    fn on_store(&self, _thread: ThreadId, _addr: MemAddr, _len: usize) {
        // CLAP does not instrument memory accesses at run time; dependencies
        // are reconstructed offline.
    }
}

/// The offline half of CLAP: given per-thread logs of operations on shared
/// locations, search for an interleaving consistent with the observed final
/// values.  The real system encodes this as an SMT problem; this
/// reproduction uses a bounded backtracking search over per-thread segment
/// orders, which is enough to demonstrate the scalability limitation the
/// paper points out ("they may exhibit a scalability issue for their offline
/// analysis").
#[derive(Debug, Default)]
pub struct ScheduleInference {
    /// Per-thread sequences of (location, value-written) pairs.
    writes: Vec<Vec<(u64, u64)>>,
    /// Observed final value per location.
    finals: HashMap<u64, u64>,
}

impl ScheduleInference {
    /// Creates an empty inference problem.
    pub fn new() -> Self {
        ScheduleInference::default()
    }

    /// Adds one thread's ordered writes.
    pub fn add_thread(&mut self, writes: Vec<(u64, u64)>) -> usize {
        self.writes.push(writes);
        self.writes.len() - 1
    }

    /// Sets the observed final value of a location.
    pub fn observe_final(&mut self, location: u64, value: u64) {
        self.finals.insert(location, value);
    }

    /// Searches for an interleaving of the per-thread write sequences whose
    /// final memory state matches the observations.  Returns the schedule as
    /// a list of thread indices, or `None` if no interleaving within the
    /// step budget matches.
    pub fn solve(&self, max_steps: u64) -> Option<Vec<usize>> {
        let mut cursors = vec![0usize; self.writes.len()];
        let mut memory: HashMap<u64, u64> = HashMap::new();
        let mut schedule = Vec::new();
        let mut budget = max_steps;
        if self.search(&mut cursors, &mut memory, &mut schedule, &mut budget) {
            Some(schedule)
        } else {
            None
        }
    }

    fn search(
        &self,
        cursors: &mut Vec<usize>,
        memory: &mut HashMap<u64, u64>,
        schedule: &mut Vec<usize>,
        budget: &mut u64,
    ) -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        if cursors
            .iter()
            .enumerate()
            .all(|(thread, cursor)| *cursor == self.writes[thread].len())
        {
            return self
                .finals
                .iter()
                .all(|(location, value)| memory.get(location) == Some(value));
        }
        for thread in 0..self.writes.len() {
            let cursor = cursors[thread];
            if cursor == self.writes[thread].len() {
                continue;
            }
            let (location, value) = self.writes[thread][cursor];
            let previous = memory.insert(location, value);
            cursors[thread] += 1;
            schedule.push(thread);
            if self.search(cursors, memory, schedule, budget) {
                return true;
            }
            schedule.pop();
            cursors[thread] -= 1;
            match previous {
                Some(old) => {
                    memory.insert(location, old);
                }
                None => {
                    memory.remove(&location);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_accumulates_per_thread_logs() {
        let recorder = ClapRecorder::new();
        recorder.on_branch(ThreadId(0), 1);
        recorder.on_branch(ThreadId(0), 2);
        recorder.on_function(ThreadId(1), 9, true);
        recorder.on_store(ThreadId(1), MemAddr::new(8), 8);
        assert_eq!(recorder.total_events(), 3);
        let logs = recorder.logs();
        assert_eq!(logs[&ThreadId(0)].len(), 2);
        assert_eq!(logs[&ThreadId(1)], vec![PathEvent::Function { id: 9, enter: true }]);
    }

    #[test]
    fn inference_finds_a_consistent_interleaving() {
        // Thread 0 writes x=1 then y=1; thread 1 writes x=2.
        // Final state x=1, y=1 requires thread 1's write to happen first.
        let mut inference = ScheduleInference::new();
        inference.add_thread(vec![(0xa, 1), (0xb, 1)]);
        inference.add_thread(vec![(0xa, 2)]);
        inference.observe_final(0xa, 1);
        inference.observe_final(0xb, 1);
        let schedule = inference.solve(10_000).expect("a schedule exists");
        // Thread 1's only write must precede thread 0's first write (to x).
        let t1_position = schedule.iter().position(|t| *t == 1).unwrap();
        let t0_first = schedule.iter().position(|t| *t == 0).unwrap();
        assert!(t1_position < t0_first);
    }

    #[test]
    fn inference_reports_unsatisfiable_observations() {
        let mut inference = ScheduleInference::new();
        inference.add_thread(vec![(0xa, 1)]);
        inference.observe_final(0xa, 99);
        assert!(inference.solve(1_000).is_none());
    }

    #[test]
    fn inference_respects_the_step_budget() {
        // A large problem with an impossible observation exhausts the budget
        // instead of running forever -- the "offline scalability" issue.
        let mut inference = ScheduleInference::new();
        for thread in 0..4u64 {
            inference.add_thread((0..6).map(|i| (i, thread)).collect());
        }
        inference.observe_final(0, 1234);
        assert!(inference.solve(5_000).is_none());
    }
}
