//! Comparison systems used by the paper's evaluation (§5.3, §5.4.2).
//!
//! Table 3 compares the recording overhead of iReplayer against:
//!
//! * the default `pthreads` library (the **baseline**: no recording, a
//!   global-lock allocator);
//! * **IR-Alloc** (iReplayer's allocator without recording);
//! * **CLAP**, which records thread-local execution paths (Ball-Larus path
//!   profiling) at run time and reconstructs the schedule offline;
//! * **rr**, which serializes all threads onto one core and traces their
//!   system calls.
//!
//! Figure 5 additionally compares the detection tools against
//! **AddressSanitizer**, which instruments every (heap) store.
//!
//! The original comparators interpose on real binaries and cannot run on
//! the managed substrate, so this crate re-creates their *recording
//! mechanisms* as [`ireplayer::Instrument`] implementations that the benchmark harness
//! attaches to the same workloads (see DESIGN.md for the substitution
//! argument).  The CLAP offline phase (path-based schedule reconstruction)
//! is implemented in [`clap`] as well, with a real Ball-Larus numbering.

pub mod asan;
pub mod ball_larus;
pub mod clap;
pub mod configs;
pub mod rr;

pub use asan::AsanChecker;
pub use ball_larus::{BallLarus, Cfg};
pub use clap::{ClapRecorder, ScheduleInference};
pub use configs::{BenchConfig, SystemUnderTest};
pub use rr::RrEmulator;
