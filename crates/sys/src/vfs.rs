//! In-memory virtual file system and file-descriptor table.
//!
//! Files are named byte vectors; open descriptors carry their own positions,
//! which are exactly the state the paper checkpoints at epoch begin and
//! restores (via `lseek(SEEK_SET)`) before a re-execution, making file
//! reads/writes *revocable* system calls.
//!
//! The descriptor table hands out the lowest free descriptor, reproducing
//! the in-situ hazard that motivates deferring `close`: in the sequence
//! `{open(1), close(1), open(2)}` the second open reuses the first
//! descriptor, so replaying the sequence after an eager close could not
//! return the same descriptor values.
//!
//! A chaos plan (see [`crate::os::SimOs::install_chaos`]) intercepts this
//! layer's calls at the [`crate::os::SimOs`] boundary -- shortening file
//! reads and writes, denying descriptors under fd-limit pressure -- so the
//! tables themselves stay oblivious to injection: they only ever see the
//! already-truncated lengths.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::SysError;
use crate::net::SocketId;

/// A file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Fd(pub i32);

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// Seek origins for [`Vfs`] and the descriptor table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Whence {
    /// Absolute position.
    Set,
    /// Relative to the current position.
    Cur,
    /// Relative to the end of the file.
    End,
}

/// What an open descriptor refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpenFileKind {
    /// A regular file in the virtual file system.
    File {
        /// Name of the file.
        name: String,
    },
    /// A connected socket managed by the network simulator.
    Socket {
        /// Connection identifier.
        socket: SocketId,
    },
}

/// An entry in the descriptor table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenFile {
    /// What the descriptor refers to.
    pub kind: OpenFileKind,
    /// Current position (meaningful for regular files).
    pub pos: u64,
}

/// The store of file contents, keyed by name.
#[derive(Debug, Default)]
pub struct Vfs {
    files: HashMap<String, Vec<u8>>,
}

impl Vfs {
    /// Creates an empty file system.
    pub fn new() -> Self {
        Vfs::default()
    }

    /// Creates (or truncates) a file with the given contents.  Used by
    /// workloads to stage their inputs.
    pub fn create_file(&mut self, name: &str, contents: Vec<u8>) {
        self.files.insert(name.to_owned(), contents);
    }

    /// Returns `true` if the file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// Size of the file in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::NotFound`] if the file does not exist.
    pub fn size(&self, name: &str) -> Result<u64, SysError> {
        self.files
            .get(name)
            .map(|c| c.len() as u64)
            .ok_or_else(|| SysError::NotFound(name.to_owned()))
    }

    /// Reads up to `len` bytes starting at `pos`.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::NotFound`] if the file does not exist.
    pub fn read_at(&self, name: &str, pos: u64, len: usize) -> Result<Vec<u8>, SysError> {
        let contents = self
            .files
            .get(name)
            .ok_or_else(|| SysError::NotFound(name.to_owned()))?;
        let start = (pos as usize).min(contents.len());
        let end = start.saturating_add(len).min(contents.len());
        Ok(contents[start..end].to_vec())
    }

    /// Writes `data` at `pos`, extending the file with zeros if needed, and
    /// returns the number of bytes written.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::NotFound`] if the file does not exist.
    pub fn write_at(&mut self, name: &str, pos: u64, data: &[u8]) -> Result<usize, SysError> {
        let contents = self
            .files
            .get_mut(name)
            .ok_or_else(|| SysError::NotFound(name.to_owned()))?;
        let start = pos as usize;
        let end = start + data.len();
        if contents.len() < end {
            contents.resize(end, 0);
        }
        contents[start..end].copy_from_slice(data);
        Ok(data.len())
    }

    /// Returns a copy of the file's contents (test and verification helper).
    ///
    /// # Errors
    ///
    /// Returns [`SysError::NotFound`] if the file does not exist.
    pub fn contents(&self, name: &str) -> Result<Vec<u8>, SysError> {
        self.files
            .get(name)
            .cloned()
            .ok_or_else(|| SysError::NotFound(name.to_owned()))
    }

    /// Names of all files, in arbitrary order.
    pub fn file_names(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }
}

/// The per-process descriptor table.
///
/// Descriptors 0-2 are reserved (standard streams); application descriptors
/// start at 3 and the lowest free value is always reused.
#[derive(Debug)]
pub struct FdTable {
    entries: BTreeMap<i32, OpenFile>,
    limit: usize,
}

/// First descriptor handed out to applications.
pub const FIRST_FD: i32 = 3;

impl FdTable {
    /// Creates a table that allows at most `limit` simultaneously open
    /// descriptors.
    pub fn new(limit: usize) -> Self {
        FdTable {
            entries: BTreeMap::new(),
            limit,
        }
    }

    /// Raises the open-file limit.  iReplayer does this during
    /// initialization because deferring `close` can push the number of open
    /// descriptors past the default limit (§2.2.3).
    pub fn raise_limit(&mut self, new_limit: usize) {
        if new_limit > self.limit {
            self.limit = new_limit;
        }
    }

    /// The current open-file limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Number of open descriptors.
    pub fn open_count(&self) -> usize {
        self.entries.len()
    }

    /// Allocates the lowest free descriptor for `kind`.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::TooManyFiles`] if the limit is reached.
    pub fn allocate(&mut self, kind: OpenFileKind) -> Result<i32, SysError> {
        if self.entries.len() >= self.limit {
            return Err(SysError::TooManyFiles { limit: self.limit });
        }
        let mut fd = FIRST_FD;
        for existing in self.entries.keys() {
            if *existing == fd {
                fd += 1;
            } else if *existing > fd {
                break;
            }
        }
        self.entries.insert(fd, OpenFile { kind, pos: 0 });
        Ok(fd)
    }

    /// Duplicates `fd` into the lowest free descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::BadFd`] if `fd` is not open, or
    /// [`SysError::TooManyFiles`] if the limit is reached.
    pub fn dup(&mut self, fd: i32) -> Result<i32, SysError> {
        let entry = self.entries.get(&fd).cloned().ok_or(SysError::BadFd(fd))?;
        if self.entries.len() >= self.limit {
            return Err(SysError::TooManyFiles { limit: self.limit });
        }
        self.allocate(entry.kind).map(|new_fd| {
            if let Some(open) = self.entries.get_mut(&new_fd) {
                open.pos = entry.pos;
            }
            new_fd
        })
    }

    /// Closes `fd`.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::BadFd`] if `fd` is not open.
    pub fn close(&mut self, fd: i32) -> Result<(), SysError> {
        self.entries.remove(&fd).map(|_| ()).ok_or(SysError::BadFd(fd))
    }

    /// Returns the entry for `fd`.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::BadFd`] if `fd` is not open.
    pub fn get(&self, fd: i32) -> Result<&OpenFile, SysError> {
        self.entries.get(&fd).ok_or(SysError::BadFd(fd))
    }

    /// Returns the entry for `fd` mutably.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::BadFd`] if `fd` is not open.
    pub fn get_mut(&mut self, fd: i32) -> Result<&mut OpenFile, SysError> {
        self.entries.get_mut(&fd).ok_or(SysError::BadFd(fd))
    }

    /// Iterates over `(fd, entry)` pairs of every open descriptor.
    pub fn iter(&self) -> impl Iterator<Item = (i32, &OpenFile)> {
        self.entries.iter().map(|(fd, open)| (*fd, open))
    }

    /// Positions of every open regular file, captured at epoch begin.
    pub fn file_positions(&self) -> Vec<(i32, u64)> {
        self.entries
            .iter()
            .filter(|(_, open)| matches!(open.kind, OpenFileKind::File { .. }))
            .map(|(fd, open)| (*fd, open.pos))
            .collect()
    }

    /// Restores positions captured by [`FdTable::file_positions`] (rollback,
    /// §3.4: "recovers file positions ... by invoking the lseek API with the
    /// SEEK_SET option").  Positions of descriptors that no longer exist are
    /// ignored, matching the behaviour of a real `lseek` on a closed fd
    /// being skipped by the runtime.
    ///
    /// Regular files that are open now but were *not* open when the
    /// snapshot was taken were necessarily opened during the epoch being
    /// rolled back; their `open` starts them at position zero, so the
    /// rollback rewinds them to zero so that re-issued (revocable) reads and
    /// writes observe the same positions as the original execution.
    pub fn restore_positions(&mut self, positions: &[(i32, u64)]) {
        for (fd, open) in self.entries.iter_mut() {
            if !matches!(open.kind, OpenFileKind::File { .. }) {
                continue;
            }
            open.pos = positions
                .iter()
                .find(|(snap_fd, _)| snap_fd == fd)
                .map(|(_, pos)| *pos)
                .unwrap_or(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vfs_read_write_round_trip() {
        let mut vfs = Vfs::new();
        vfs.create_file("input.txt", b"hello world".to_vec());
        assert!(vfs.exists("input.txt"));
        assert!(!vfs.exists("missing"));
        assert_eq!(vfs.size("input.txt").unwrap(), 11);
        assert_eq!(vfs.read_at("input.txt", 6, 5).unwrap(), b"world");
        assert_eq!(vfs.read_at("input.txt", 6, 100).unwrap(), b"world");
        assert_eq!(vfs.read_at("input.txt", 100, 5).unwrap(), b"");
        vfs.write_at("input.txt", 6, b"earth").unwrap();
        assert_eq!(vfs.contents("input.txt").unwrap(), b"hello earth");
        // Writing past the end extends with zeros.
        vfs.write_at("input.txt", 13, b"!").unwrap();
        assert_eq!(vfs.size("input.txt").unwrap(), 14);
        assert!(vfs.read_at("missing", 0, 1).is_err());
        assert!(vfs.file_names().contains(&"input.txt".to_owned()));
    }

    #[test]
    fn fd_table_reuses_the_lowest_free_descriptor() {
        let mut table = FdTable::new(16);
        let file = |n: &str| OpenFileKind::File { name: n.to_owned() };
        let a = table.allocate(file("a")).unwrap();
        let b = table.allocate(file("b")).unwrap();
        let c = table.allocate(file("c")).unwrap();
        assert_eq!((a, b, c), (3, 4, 5));
        // The in-situ hazard: close(4) then open -> descriptor 4 is reused.
        table.close(b).unwrap();
        let d = table.allocate(file("d")).unwrap();
        assert_eq!(d, 4);
        assert_eq!(table.open_count(), 3);
    }

    #[test]
    fn fd_limit_is_enforced_and_raisable() {
        let mut table = FdTable::new(2);
        let file = |n: &str| OpenFileKind::File { name: n.to_owned() };
        table.allocate(file("a")).unwrap();
        table.allocate(file("b")).unwrap();
        assert!(matches!(
            table.allocate(file("c")),
            Err(SysError::TooManyFiles { limit: 2 })
        ));
        table.raise_limit(4);
        assert_eq!(table.limit(), 4);
        table.allocate(file("c")).unwrap();
        // Lowering is ignored.
        table.raise_limit(1);
        assert_eq!(table.limit(), 4);
    }

    #[test]
    fn dup_copies_kind_and_position() {
        let mut table = FdTable::new(8);
        let fd = table.allocate(OpenFileKind::File { name: "x".into() }).unwrap();
        table.get_mut(fd).unwrap().pos = 42;
        let dup = table.dup(fd).unwrap();
        assert_ne!(dup, fd);
        assert_eq!(table.get(dup).unwrap().pos, 42);
        assert!(table.dup(99).is_err());
    }

    #[test]
    fn close_of_unknown_descriptor_fails() {
        let mut table = FdTable::new(8);
        assert!(matches!(table.close(9), Err(SysError::BadFd(9))));
        assert!(table.get(9).is_err());
        assert!(table.get_mut(9).is_err());
    }

    #[test]
    fn positions_round_trip_through_checkpoint() {
        let mut table = FdTable::new(8);
        let a = table.allocate(OpenFileKind::File { name: "a".into() }).unwrap();
        let b = table.allocate(OpenFileKind::File { name: "b".into() }).unwrap();
        let s = table.allocate(OpenFileKind::Socket { socket: SocketId(7) }).unwrap();
        table.get_mut(a).unwrap().pos = 10;
        table.get_mut(b).unwrap().pos = 20;

        let saved = table.file_positions();
        // Sockets have no position to save.
        assert_eq!(saved.len(), 2);

        table.get_mut(a).unwrap().pos = 999;
        table.get_mut(b).unwrap().pos = 999;
        table.restore_positions(&saved);
        assert_eq!(table.get(a).unwrap().pos, 10);
        assert_eq!(table.get(b).unwrap().pos, 20);
        assert_eq!(table.get(s).unwrap().pos, 0);
        assert_eq!(table.iter().count(), 3);

        // Restoring a position for a vanished descriptor is ignored.
        table.close(a).unwrap();
        table.restore_positions(&saved);
    }
}
