//! Scripted network peers.
//!
//! The paper's evaluation includes network-facing applications (`aget`
//! downloading over the LAN, Apache and Memcached serving requests).  Socket
//! reads and writes are *recordable* system calls: the data cannot be
//! obtained again from the network during a replay, so the recorded bytes
//! are returned instead.
//!
//! [`NetSim`] provides deterministic-but-stateful peers: every read consumes
//! data that will never be produced again, so a replay that incorrectly
//! re-invoked a socket read would observe different data -- the same hazard
//! the real network poses.
//!
//! Chaos-injected socket faults (`EAGAIN`, connection reset, partition
//! windows; see [`crate::os::SimOs::install_chaos`]) happen at the
//! [`crate::os::SimOs`] boundary *before* the peer script runs, so an
//! injected failure never consumes peer data -- only a reset, which closes
//! the connection for real, changes this module's state.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::SysError;

/// Identifier of an open simulated connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SocketId(pub u64);

impl fmt::Display for SocketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sock{}", self.0)
    }
}

/// How a peer behaves once connected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeerScript {
    /// A download server: serves `total_bytes` of pseudo-random data derived
    /// from `seed`, then closes the connection.  Models the `aget` workload.
    Download {
        /// Seed of the served byte stream.
        seed: u64,
        /// Total bytes the peer will serve.
        total_bytes: usize,
    },
    /// A request/response server: every write of a request enqueues a
    /// response of `response_len` bytes derived from the request contents.
    /// Models a memcached/HTTP backend as seen by a *client* workload.
    Echo {
        /// Length of each response.
        response_len: usize,
    },
    /// A client that issues `requests` request lines of `request_len` bytes
    /// derived from `seed`, as read by a *server* workload; bytes written
    /// back to it are acknowledged and discarded.  Models the `ab` and
    /// memcached client drivers.
    Client {
        /// Seed of the request stream.
        seed: u64,
        /// Number of requests the client will send.
        requests: usize,
        /// Length of each request in bytes.
        request_len: usize,
    },
}

#[derive(Debug, Clone)]
struct Connection {
    script: PeerScript,
    /// Bytes the application has not read yet.
    inbox: Vec<u8>,
    /// Read offset into `inbox`.
    read_pos: usize,
    /// Bytes of scripted data already generated (Download/Client).
    generated: usize,
    /// Requests already generated (Client).
    requests_generated: usize,
    closed: bool,
}

/// A deterministic pseudo-random byte generator (SplitMix64), used so that
/// scripted peers are reproducible across benchmark runs without pulling a
/// full RNG into the hot path.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn pseudo_bytes(seed: u64, offset: usize, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut state = seed ^ (offset as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
    while out.len() < len {
        let word = splitmix64(&mut state).to_le_bytes();
        let take = (len - out.len()).min(8);
        out.extend_from_slice(&word[..take]);
    }
    out
}

/// The network simulator: listening endpoints and open connections.
#[derive(Debug, Default)]
pub struct NetSim {
    endpoints: HashMap<String, PeerScript>,
    connections: HashMap<SocketId, Connection>,
    next_socket: u64,
    /// Pending client connections per listening endpoint (for `accept`).
    backlog: HashMap<String, usize>,
}

impl NetSim {
    /// Creates a simulator with no endpoints.
    pub fn new() -> Self {
        NetSim::default()
    }

    /// Registers a peer reachable at `address` (e.g. `"mirror:80"`).
    pub fn register_peer(&mut self, address: &str, script: PeerScript) {
        self.endpoints.insert(address.to_owned(), script);
    }

    /// Queues `count` incoming client connections on the listening address,
    /// to be handed out by [`NetSim::accept`].
    pub fn enqueue_clients(&mut self, address: &str, count: usize) {
        *self.backlog.entry(address.to_owned()).or_insert(0) += count;
    }

    /// Connects to a registered peer and returns the connection id.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::NotFound`] if no peer is registered at `address`.
    pub fn connect(&mut self, address: &str) -> Result<SocketId, SysError> {
        let script = self
            .endpoints
            .get(address)
            .cloned()
            .ok_or_else(|| SysError::NotFound(address.to_owned()))?;
        Ok(self.open(script))
    }

    /// Accepts one pending client connection on a listening address.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::WouldBlock`] if no client is waiting, and
    /// [`SysError::NotFound`] if the address has no registered peer script.
    pub fn accept(&mut self, address: &str) -> Result<SocketId, SysError> {
        let pending = self.backlog.get_mut(address).ok_or(SysError::WouldBlock)?;
        if *pending == 0 {
            return Err(SysError::WouldBlock);
        }
        let script = self
            .endpoints
            .get(address)
            .cloned()
            .ok_or_else(|| SysError::NotFound(address.to_owned()))?;
        *pending -= 1;
        Ok(self.open(script))
    }

    /// Number of client connections still waiting on `address`.
    pub fn pending_clients(&self, address: &str) -> usize {
        self.backlog.get(address).copied().unwrap_or(0)
    }

    /// Registered peers, sorted by address so trace capture is
    /// deterministic.
    pub fn peers(&self) -> Vec<(String, PeerScript)> {
        let mut out: Vec<_> = self.endpoints.iter().map(|(a, s)| (a.clone(), s.clone())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Pending backlog counts, sorted by address so trace capture is
    /// deterministic.  Addresses whose backlog has drained to zero are
    /// omitted.
    pub fn backlog_counts(&self) -> Vec<(String, usize)> {
        let mut out: Vec<_> = self
            .backlog
            .iter()
            .filter(|(_, count)| **count > 0)
            .map(|(a, c)| (a.clone(), *c))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn open(&mut self, script: PeerScript) -> SocketId {
        self.next_socket += 1;
        let id = SocketId(self.next_socket);
        self.connections.insert(
            id,
            Connection {
                script,
                inbox: Vec::new(),
                read_pos: 0,
                generated: 0,
                requests_generated: 0,
                closed: false,
            },
        );
        id
    }

    /// Reads up to `len` bytes from the connection.  Returns an empty vector
    /// once the peer has nothing further to send (end of stream).
    ///
    /// # Errors
    ///
    /// Returns [`SysError::BadFd`]-style [`SysError::NotASocket`] if the
    /// connection id is unknown.
    pub fn read(&mut self, socket: SocketId, len: usize) -> Result<Vec<u8>, SysError> {
        let conn = self
            .connections
            .get_mut(&socket)
            .ok_or(SysError::NotASocket(socket.0 as i32))?;
        if conn.read_pos >= conn.inbox.len() {
            conn.inbox.clear();
            conn.read_pos = 0;
            Self::refill(conn);
        }
        let available = conn.inbox.len() - conn.read_pos;
        let take = available.min(len);
        let out = conn.inbox[conn.read_pos..conn.read_pos + take].to_vec();
        conn.read_pos += take;
        Ok(out)
    }

    /// Writes `data` to the connection, returning the number of bytes the
    /// peer accepted.  Echo peers enqueue a response; client peers simply
    /// acknowledge.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::NotASocket`] if the connection id is unknown, and
    /// [`SysError::ConnectionClosed`] if it was shut down.
    pub fn write(&mut self, socket: SocketId, data: &[u8]) -> Result<usize, SysError> {
        let conn = self
            .connections
            .get_mut(&socket)
            .ok_or(SysError::NotASocket(socket.0 as i32))?;
        if conn.closed {
            return Err(SysError::ConnectionClosed);
        }
        if let PeerScript::Echo { response_len } = conn.script {
            let digest = data
                .iter()
                .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(u64::from(*b)));
            let response = pseudo_bytes(digest, conn.generated, response_len);
            conn.generated += response_len;
            conn.inbox.extend_from_slice(&response);
        }
        Ok(data.len())
    }

    /// Returns `true` if a read on the connection would return data without
    /// generating new scripted bytes (used by `epoll_wait`).
    pub fn readable(&self, socket: SocketId) -> bool {
        self.connections
            .get(&socket)
            .map(|c| c.read_pos < c.inbox.len() || Self::can_refill(c))
            .unwrap_or(false)
    }

    /// Shuts down the connection.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::NotASocket`] if the connection id is unknown.
    pub fn close(&mut self, socket: SocketId) -> Result<(), SysError> {
        let conn = self
            .connections
            .get_mut(&socket)
            .ok_or(SysError::NotASocket(socket.0 as i32))?;
        conn.closed = true;
        Ok(())
    }

    /// Removes the connection entirely (epoch housekeeping removes cached
    /// data for closed sockets, §3.1).
    pub fn reclaim(&mut self, socket: SocketId) {
        self.connections.remove(&socket);
    }

    /// Number of live connections.
    pub fn open_connections(&self) -> usize {
        self.connections.len()
    }

    fn can_refill(conn: &Connection) -> bool {
        match conn.script {
            PeerScript::Download { total_bytes, .. } => conn.generated < total_bytes,
            PeerScript::Client { requests, .. } => conn.requests_generated < requests,
            PeerScript::Echo { .. } => false,
        }
    }

    fn refill(conn: &mut Connection) {
        if conn.closed {
            return;
        }
        match conn.script {
            PeerScript::Download { seed, total_bytes } => {
                if conn.generated < total_bytes {
                    let chunk = (total_bytes - conn.generated).min(16 * 1024);
                    let bytes = pseudo_bytes(seed, conn.generated, chunk);
                    conn.generated += chunk;
                    conn.inbox.extend_from_slice(&bytes);
                }
            }
            PeerScript::Client {
                seed,
                requests,
                request_len,
            } => {
                if conn.requests_generated < requests {
                    let bytes = pseudo_bytes(seed.wrapping_add(conn.requests_generated as u64), 0, request_len);
                    conn.requests_generated += 1;
                    conn.inbox.extend_from_slice(&bytes);
                }
            }
            PeerScript::Echo { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn download_peer_serves_exactly_total_bytes() {
        let mut net = NetSim::new();
        net.register_peer(
            "mirror:80",
            PeerScript::Download {
                seed: 7,
                total_bytes: 40_000,
            },
        );
        let sock = net.connect("mirror:80").unwrap();
        let mut total = 0;
        loop {
            let chunk = net.read(sock, 4096).unwrap();
            if chunk.is_empty() {
                break;
            }
            total += chunk.len();
        }
        assert_eq!(total, 40_000);
        // End of stream is sticky.
        assert!(net.read(sock, 4096).unwrap().is_empty());
    }

    #[test]
    fn download_streams_are_not_repeatable_once_consumed() {
        // This is the property that forces socket reads to be recordable:
        // after the original execution consumed the stream, a replay that
        // re-invoked the read would see nothing.
        let mut net = NetSim::new();
        net.register_peer(
            "mirror:80",
            PeerScript::Download {
                seed: 7,
                total_bytes: 1000,
            },
        );
        let sock = net.connect("mirror:80").unwrap();
        let first = net.read(sock, 2000).unwrap();
        assert_eq!(first.len(), 1000);
        let second = net.read(sock, 2000).unwrap();
        assert!(second.is_empty());
    }

    #[test]
    fn echo_peer_responds_to_each_request() {
        let mut net = NetSim::new();
        net.register_peer("kv:11211", PeerScript::Echo { response_len: 32 });
        let sock = net.connect("kv:11211").unwrap();
        // No request yet: nothing to read.
        assert!(net.read(sock, 64).unwrap().is_empty());
        assert_eq!(net.write(sock, b"get key1\r\n").unwrap(), 10);
        let response = net.read(sock, 64).unwrap();
        assert_eq!(response.len(), 32);
        // Different requests produce different responses.
        net.write(sock, b"get key2\r\n").unwrap();
        let response2 = net.read(sock, 64).unwrap();
        assert_ne!(response, response2);
    }

    #[test]
    fn client_peers_are_accepted_from_the_backlog() {
        let mut net = NetSim::new();
        net.register_peer(
            "httpd:80",
            PeerScript::Client {
                seed: 3,
                requests: 2,
                request_len: 64,
            },
        );
        net.enqueue_clients("httpd:80", 2);
        assert_eq!(net.pending_clients("httpd:80"), 2);

        let c1 = net.accept("httpd:80").unwrap();
        let c2 = net.accept("httpd:80").unwrap();
        assert!(matches!(net.accept("httpd:80"), Err(SysError::WouldBlock)));
        assert_eq!(net.pending_clients("httpd:80"), 0);

        // Each client sends its scripted requests, then the stream ends.
        let r1 = net.read(c1, 1024).unwrap();
        assert_eq!(r1.len(), 64);
        assert!(net.readable(c1));
        let r2 = net.read(c1, 1024).unwrap();
        assert_eq!(r2.len(), 64);
        assert!(net.read(c1, 1024).unwrap().is_empty());
        assert!(!net.readable(c1));
        // The server's response write is acknowledged.
        assert_eq!(net.write(c2, b"HTTP/1.1 200 OK").unwrap(), 15);
    }

    #[test]
    fn connect_to_unknown_peer_fails() {
        let mut net = NetSim::new();
        assert!(matches!(net.connect("nowhere:1"), Err(SysError::NotFound(_))));
        assert!(matches!(net.accept("nowhere:1"), Err(SysError::WouldBlock)));
    }

    #[test]
    fn closed_connections_reject_writes_and_can_be_reclaimed() {
        let mut net = NetSim::new();
        net.register_peer("kv:11211", PeerScript::Echo { response_len: 8 });
        let sock = net.connect("kv:11211").unwrap();
        net.close(sock).unwrap();
        assert!(matches!(net.write(sock, b"x"), Err(SysError::ConnectionClosed)));
        assert_eq!(net.open_connections(), 1);
        net.reclaim(sock);
        assert_eq!(net.open_connections(), 0);
        assert!(matches!(net.read(sock, 1), Err(SysError::NotASocket(_))));
        assert!(matches!(net.close(sock), Err(SysError::NotASocket(_))));
    }

    #[test]
    fn pseudo_bytes_are_deterministic_per_seed_and_offset() {
        assert_eq!(pseudo_bytes(1, 0, 16), pseudo_bytes(1, 0, 16));
        assert_ne!(pseudo_bytes(1, 0, 16), pseudo_bytes(2, 0, 16));
        assert_ne!(pseudo_bytes(1, 0, 16), pseudo_bytes(1, 16, 16));
    }
}
