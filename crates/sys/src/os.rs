//! The [`SimOs`] facade: one object bundling the simulated kernel state.

use std::sync::atomic::{AtomicBool, Ordering};

use ireplayer_chaos::{ChaosEngine, ChaosPlan, ChaosRevocableState, FaultClass, NetFault};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::clock::VirtualClock;
use crate::error::SysError;
use crate::mmap::MmapTable;
use crate::net::{NetSim, PeerScript, SocketId};
use crate::vfs::{FdTable, OpenFileKind, Vfs, Whence};

/// Callback invoked whenever the chaos plane injects a fault, with the
/// fault class and the operation index the plan fired at.  Installed by the
/// runtime to surface injections as session events and diagnostics; called
/// *after* the kernel lock is released, so observers may re-enter [`SimOs`].
pub type ChaosObserver = Box<dyn Fn(FaultClass, u64) + Send + Sync>;

/// Saved positions of all open regular files, captured at epoch begin and
/// restored before a re-execution (§3.1, §3.4).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilePositions(pub Vec<(i32, u64)>);

/// Operating-system state captured at an epoch boundary.
///
/// Only file positions need to be captured: file *contents* are revocable
/// (re-issued writes reproduce them), sockets are recordable (never
/// re-invoked during replay), and `close`/`munmap` are deferred past the
/// epoch boundary, so nothing else changes under a re-execution's feet.
/// When a chaos plan is installed, the revocable-class chaos counters ride
/// along: re-issued reads/writes/allocations must see the same counter
/// values so the re-execution injects the same faults.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OsSnapshot {
    /// Positions of every open regular file.
    pub positions: FilePositions,
    /// Chaos counters consumed by replay-re-issued calls, if a plan is
    /// installed.
    pub chaos: Option<ChaosRevocableState>,
}

/// The staged workload inputs of a simulated kernel: everything a harness
/// set up *before* the program ran, captured so a durable trace can restore
/// the same world in a fresh process.
///
/// This is deliberately the staging-time view (file contents, peer scripts,
/// backlog counts), not the runtime view (descriptors, connections,
/// positions): it is captured before the first instruction of the recorded
/// program executes, so restoring it and re-running the program reproduces
/// every later kernel state.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct OsInputs {
    /// Staged files, as `(name, contents)`, sorted by name.
    pub files: Vec<(String, Vec<u8>)>,
    /// Registered network peers, as `(address, script)`, sorted by address.
    pub peers: Vec<(String, PeerScript)>,
    /// Pending client backlog, as `(address, count)`, sorted by address.
    pub backlog: Vec<(String, usize)>,
    /// Open-file limit in force when the inputs were captured.
    pub fd_limit: usize,
}

#[derive(Debug)]
struct OsInner {
    vfs: Vfs,
    fds: FdTable,
    net: NetSim,
    mmap: MmapTable,
    pid: u32,
    next_child_pid: u32,
    /// Fault-injection engine, consulted at every eligible call boundary.
    chaos: Option<ChaosEngine>,
}

/// The simulated operating system shared by all application threads.
///
/// All methods take `&self`; the internal state is protected by a single
/// lock, which plays the role of kernel entry.  The runtime is responsible
/// for the record/replay policy around each call (classification via
/// [`crate::SyscallKind::classify`]); `SimOs` just executes them.
pub struct SimOs {
    inner: Mutex<OsInner>,
    clock: VirtualClock,
    /// Fast-path gate for the calls that would otherwise never take the
    /// kernel lock (clock reads) or are allocation-hot; `true` once a chaos
    /// plan is installed.
    chaos_active: AtomicBool,
    /// Injection observer, held outside the kernel lock so notifications
    /// can run after the lock is dropped.
    chaos_observer: Mutex<Option<ChaosObserver>>,
    /// Namespace tag of this kernel instance.  A multi-tenant runtime
    /// creates one `SimOs` per arena partition and tags it with the
    /// partition index, so fd/net/mmap/clock tables are per-session by
    /// construction; the tag makes that ownership inspectable.  It is
    /// invisible to the simulated program (pids, fds, and clock values do
    /// not depend on it), keeping solo and multi-tenant runs byte-identical.
    namespace: u32,
}

/// Default open-file limit, deliberately modest so that tests can exercise
/// the "deferred closes exceed the limit" hazard; the runtime raises it at
/// initialization exactly as the paper does.
pub const DEFAULT_FD_LIMIT: usize = 256;

impl SimOs {
    /// Creates a simulated OS for a process with id `pid`, in namespace 0.
    pub fn new(pid: u32) -> Self {
        SimOs::with_namespace(pid, 0)
    }

    /// Creates a simulated OS for a process with id `pid`, tagged with a
    /// session `namespace` (see [`SimOs`] docs; the tag never leaks into
    /// simulated results).
    pub fn with_namespace(pid: u32, namespace: u32) -> Self {
        SimOs {
            inner: Mutex::new(OsInner {
                vfs: Vfs::new(),
                fds: FdTable::new(DEFAULT_FD_LIMIT),
                net: NetSim::new(),
                mmap: MmapTable::new(1 << 40),
                pid,
                next_child_pid: pid + 1,
                chaos: None,
            }),
            clock: VirtualClock::default(),
            chaos_active: AtomicBool::new(false),
            chaos_observer: Mutex::new(None),
            namespace,
        }
    }

    /// The namespace tag this kernel instance was created with.  Survives
    /// [`SimOs::reset`]: the reboot recycles the tables, not the identity.
    pub fn namespace(&self) -> u32 {
        self.namespace
    }

    /// Resets the simulated kernel to its boot state, keeping the current
    /// open-file limit.
    ///
    /// The runtime's warm-relaunch path calls this between runs so that a
    /// reused [`SimOs`] hands out the same file descriptors, socket ids,
    /// mapping addresses, and child pids as a freshly constructed one.
    /// Staged files and registered network peers are dropped -- each run
    /// stages its own inputs.  The virtual clock's tick counter restarts,
    /// though its real-time component keeps advancing (wall time cannot be
    /// rolled back).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        let limit = inner.fds.limit();
        let pid = inner.pid;
        let mut fds = FdTable::new(DEFAULT_FD_LIMIT);
        fds.raise_limit(limit);
        // An installed chaos plan survives the reboot with fresh counters:
        // a warm-relaunched run injects the same fault stream as the first
        // run did, which is what makes forced replays fingerprint-identical.
        let chaos = inner
            .chaos
            .as_ref()
            .map(|engine| ChaosEngine::new(engine.plan().clone()));
        *inner = OsInner {
            vfs: Vfs::new(),
            fds,
            net: NetSim::new(),
            mmap: MmapTable::new(1 << 40),
            pid,
            next_child_pid: pid + 1,
            chaos,
        };
        drop(inner);
        self.clock.reset();
    }

    // ------------------------------------------------------------------
    // Chaos plane.
    // ------------------------------------------------------------------

    /// Installs a compiled chaos plan; every later eligible system call
    /// consults it.  Counters start from zero.  Installing on a kernel that
    /// already has a plan replaces it (and its counters) wholesale.
    pub fn install_chaos(&self, plan: ChaosPlan) {
        self.inner.lock().chaos = Some(ChaosEngine::new(plan));
        self.chaos_active.store(true, Ordering::Release);
    }

    /// Removes any installed chaos plan; later system calls run fault-free.
    /// [`SimOs::reset`] deliberately keeps an installed plan, so a launch
    /// that must run clean on a kernel a chaotic launch used before calls
    /// this explicitly.
    pub fn uninstall_chaos(&self) {
        self.inner.lock().chaos = None;
        self.chaos_active.store(false, Ordering::Release);
    }

    /// Registers the injection observer (replacing any previous one).  The
    /// observer runs with no kernel lock held.
    pub fn set_chaos_observer(&self, observer: ChaosObserver) {
        *self.chaos_observer.lock() = Some(observer);
    }

    /// The installed plan, if any.
    pub fn chaos_plan(&self) -> Option<ChaosPlan> {
        self.inner.lock().chaos.as_ref().map(|engine| engine.plan().clone())
    }

    /// Faults injected so far, per class; empty when no plan is installed.
    pub fn chaos_injected(&self) -> Vec<(FaultClass, u64)> {
        self.inner
            .lock()
            .chaos
            .as_ref()
            .map(|engine| engine.injected())
            .unwrap_or_default()
    }

    /// Consults the chaos plan for a managed allocation on `thread`;
    /// returns `true` if the allocation must fail.  Not a system call: the
    /// runtime's allocator asks directly, and the answer is a pure function
    /// of per-thread counters that the epoch snapshot restores, so the
    /// decision is *not* recorded -- a replayed re-execution recomputes it
    /// identically.
    pub fn chaos_alloc_denied(&self, thread: u32) -> bool {
        if !self.chaos_active.load(Ordering::Acquire) {
            return false;
        }
        let site = {
            let mut inner = self.inner.lock();
            inner.chaos.as_mut().and_then(|engine| engine.on_alloc(thread))
        };
        match site {
            Some(site) => {
                self.notify_chaos(FaultClass::AllocFail, site);
                true
            }
            None => false,
        }
    }

    fn notify_chaos(&self, class: FaultClass, site: u64) {
        // Never called with `self.inner` held: observers may re-enter.
        if let Some(observer) = self.chaos_observer.lock().as_ref() {
            observer(class, site);
        }
    }

    /// Chaos gate shared by every descriptor-producing call.  Returns the
    /// injection site and the current limit if the call must fail with
    /// [`SysError::TooManyFiles`].
    fn chaos_deny_fd(inner: &mut OsInner) -> Option<(u64, usize)> {
        let limit = inner.fds.limit();
        inner.chaos.as_mut()?.on_fd_op().map(|site| (site, limit))
    }

    // ------------------------------------------------------------------
    // Workload staging helpers (not system calls).
    // ------------------------------------------------------------------

    /// Creates (or truncates) a file with the given contents.
    pub fn create_file(&self, name: &str, contents: Vec<u8>) {
        self.inner.lock().vfs.create_file(name, contents);
    }

    /// Returns a copy of a file's contents, for verification.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::NotFound`] if the file does not exist.
    pub fn file_contents(&self, name: &str) -> Result<Vec<u8>, SysError> {
        self.inner.lock().vfs.contents(name)
    }

    /// Registers a network peer reachable at `address`.
    pub fn register_peer(&self, address: &str, script: PeerScript) {
        self.inner.lock().net.register_peer(address, script);
    }

    /// Queues `count` incoming client connections on a listening address.
    pub fn enqueue_clients(&self, address: &str, count: usize) {
        self.inner.lock().net.enqueue_clients(address, count);
    }

    /// Number of client connections still waiting on `address`.
    pub fn pending_clients(&self, address: &str) -> usize {
        self.inner.lock().net.pending_clients(address)
    }

    /// Raises the open-file limit (done by the runtime at initialization,
    /// §2.2.3).
    pub fn raise_fd_limit(&self, limit: usize) {
        self.inner.lock().fds.raise_limit(limit);
    }

    /// Captures the staged workload inputs (files, peers, backlog) so a
    /// durable trace can rebuild the same kernel world in another process.
    ///
    /// Meaningful only before the recorded program starts running: once
    /// reads and writes mutate the world, this returns the *current* file
    /// contents, not the staged ones.
    pub fn staged_inputs(&self) -> OsInputs {
        let inner = self.inner.lock();
        let mut files: Vec<(String, Vec<u8>)> = inner
            .vfs
            .file_names()
            .into_iter()
            .map(|name| {
                let contents = inner.vfs.contents(&name).unwrap_or_default();
                (name, contents)
            })
            .collect();
        files.sort_by(|a, b| a.0.cmp(&b.0));
        OsInputs {
            files,
            peers: inner.net.peers(),
            backlog: inner.net.backlog_counts(),
            fd_limit: inner.fds.limit(),
        }
    }

    /// Rebuilds the kernel to its boot state and stages `inputs`, exactly
    /// as a harness would before a recorded run.  Used by trace replay to
    /// recreate the recorded world in a fresh process.
    pub fn restore_inputs(&self, inputs: &OsInputs) {
        self.reset();
        self.raise_fd_limit(inputs.fd_limit);
        for (name, contents) in &inputs.files {
            self.create_file(name, contents.clone());
        }
        for (address, script) in &inputs.peers {
            self.register_peer(address, script.clone());
        }
        for (address, count) in &inputs.backlog {
            self.enqueue_clients(address, *count);
        }
    }

    /// Number of currently open descriptors.
    pub fn open_fd_count(&self) -> usize {
        self.inner.lock().fds.open_count()
    }

    // ------------------------------------------------------------------
    // Repeatable calls.
    // ------------------------------------------------------------------

    /// `getpid()`.
    pub fn getpid(&self) -> u32 {
        self.inner.lock().pid
    }

    /// `fcntl(fd, F_GETFL)`-style query; returns 0 for any open descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::BadFd`] if `fd` is not open.
    pub fn fcntl_get(&self, fd: i32) -> Result<i64, SysError> {
        self.inner.lock().fds.get(fd).map(|_| 0)
    }

    // ------------------------------------------------------------------
    // Recordable calls.
    // ------------------------------------------------------------------

    /// `gettimeofday()`, in nanoseconds.  The chaos plan may step the clock
    /// forward (NTP-jump analogue) before the reading is taken; the jumped
    /// reading is recorded like any other, so replay serves it from the log.
    pub fn gettime_ns(&self) -> u64 {
        if self.chaos_active.load(Ordering::Acquire) {
            let jump = {
                let mut inner = self.inner.lock();
                inner.chaos.as_mut().and_then(|engine| engine.on_clock())
            };
            if let Some((ns, site)) = jump {
                self.clock.advance(ns);
                self.notify_chaos(FaultClass::ClockJump, site);
            }
        }
        self.clock.now_ns()
    }

    /// `open(path)`.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::NotFound`] if the file does not exist and
    /// [`SysError::TooManyFiles`] if the descriptor limit is reached (or
    /// the chaos plan injects descriptor pressure).
    pub fn open(&self, path: &str) -> Result<i32, SysError> {
        let mut inner = self.inner.lock();
        if let Some((site, limit)) = Self::chaos_deny_fd(&mut inner) {
            drop(inner);
            self.notify_chaos(FaultClass::FdPressure, site);
            return Err(SysError::TooManyFiles { limit });
        }
        if !inner.vfs.exists(path) {
            return Err(SysError::NotFound(path.to_owned()));
        }
        inner.fds.allocate(OpenFileKind::File { name: path.to_owned() })
    }

    /// Creates the file if missing, then opens it for writing.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::TooManyFiles`] if the descriptor limit is
    /// reached (or the chaos plan injects descriptor pressure).
    pub fn open_create(&self, path: &str) -> Result<i32, SysError> {
        let mut inner = self.inner.lock();
        if let Some((site, limit)) = Self::chaos_deny_fd(&mut inner) {
            drop(inner);
            self.notify_chaos(FaultClass::FdPressure, site);
            return Err(SysError::TooManyFiles { limit });
        }
        if !inner.vfs.exists(path) {
            inner.vfs.create_file(path, Vec::new());
        }
        inner.fds.allocate(OpenFileKind::File { name: path.to_owned() })
    }

    /// `dup(fd)`.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::BadFd`] or [`SysError::TooManyFiles`].
    pub fn dup(&self, fd: i32) -> Result<i32, SysError> {
        let mut inner = self.inner.lock();
        if let Some((site, limit)) = Self::chaos_deny_fd(&mut inner) {
            drop(inner);
            self.notify_chaos(FaultClass::FdPressure, site);
            return Err(SysError::TooManyFiles { limit });
        }
        inner.fds.dup(fd)
    }

    /// `connect(address)`.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::NotFound`] for unknown peers and
    /// [`SysError::TooManyFiles`] if the descriptor limit is reached (or
    /// the chaos plan injects descriptor pressure).
    pub fn socket_connect(&self, address: &str) -> Result<i32, SysError> {
        let mut inner = self.inner.lock();
        if let Some((site, limit)) = Self::chaos_deny_fd(&mut inner) {
            drop(inner);
            self.notify_chaos(FaultClass::FdPressure, site);
            return Err(SysError::TooManyFiles { limit });
        }
        let socket = inner.net.connect(address)?;
        inner.fds.allocate(OpenFileKind::Socket { socket })
    }

    /// `accept(address)` on a listening endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::WouldBlock`] if no client is pending and
    /// [`SysError::TooManyFiles`] under injected descriptor pressure.
    pub fn socket_accept(&self, address: &str) -> Result<i32, SysError> {
        let mut inner = self.inner.lock();
        if let Some((site, limit)) = Self::chaos_deny_fd(&mut inner) {
            drop(inner);
            self.notify_chaos(FaultClass::FdPressure, site);
            return Err(SysError::TooManyFiles { limit });
        }
        let socket = inner.net.accept(address)?;
        inner.fds.allocate(OpenFileKind::Socket { socket })
    }

    /// `recv(fd, len)`.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::BadFd`] or [`SysError::NotASocket`]; under
    /// chaos, additionally [`SysError::WouldBlock`] (`EAGAIN` or a network
    /// partition window) or [`SysError::ConnectionClosed`] (an injected
    /// reset, which also closes the connection for real).
    pub fn socket_read(&self, fd: i32, len: usize) -> Result<Vec<u8>, SysError> {
        let mut inner = self.inner.lock();
        let socket = Self::socket_of(&inner, fd)?;
        if let Some(fault) = inner.chaos.as_mut().and_then(|engine| engine.on_socket_op(fd)) {
            return self.apply_socket_fault(inner, socket, fault);
        }
        inner.net.read(socket, len)
    }

    /// `send(fd, data)`.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::BadFd`], [`SysError::NotASocket`] or
    /// [`SysError::ConnectionClosed`]; under chaos, additionally
    /// [`SysError::WouldBlock`] or an injected connection reset.
    pub fn socket_write(&self, fd: i32, data: &[u8]) -> Result<usize, SysError> {
        let mut inner = self.inner.lock();
        let socket = Self::socket_of(&inner, fd)?;
        if let Some(fault) = inner.chaos.as_mut().and_then(|engine| engine.on_socket_op(fd)) {
            return self.apply_socket_fault(inner, socket, fault).map(|_| 0);
        }
        inner.net.write(socket, data)
    }

    /// `epoll_wait`-style readiness query over a set of socket descriptors:
    /// returns the subset that is readable.  Sockets inside an injected
    /// partition window are hidden (and the query drains one operation from
    /// the window).
    pub fn poll_readable(&self, fds: &[i32]) -> Vec<i32> {
        let mut inner = self.inner.lock();
        let mut ready = Vec::new();
        for &fd in fds {
            let Ok(socket) = Self::socket_of(&inner, fd) else {
                continue;
            };
            if inner.chaos.as_mut().is_some_and(|engine| engine.on_poll(fd)) {
                continue;
            }
            if inner.net.readable(socket) {
                ready.push(fd);
            }
        }
        ready
    }

    /// `mmap(len)`: returns the simulated base address.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::MmapExhausted`] (for real, or injected by the
    /// chaos plan) or [`SysError::InvalidArgument`].
    pub fn mmap(&self, len: u64) -> Result<u64, SysError> {
        let mut inner = self.inner.lock();
        if len > 0 {
            if let Some(site) = inner.chaos.as_mut().and_then(|engine| engine.on_mmap()) {
                drop(inner);
                self.notify_chaos(FaultClass::MmapExhausted, site);
                return Err(SysError::MmapExhausted { requested: len });
            }
        }
        inner.mmap.mmap(len).map(|region| region.id)
    }

    /// Turns a [`ireplayer_chaos::SocketFault`] into the observable kernel
    /// behaviour.  Consumes the guard so the observer runs unlocked.
    fn apply_socket_fault(
        &self,
        mut inner: parking_lot::MutexGuard<'_, OsInner>,
        socket: SocketId,
        fault: ireplayer_chaos::SocketFault,
    ) -> Result<Vec<u8>, SysError> {
        let (class, error) = match fault.fault {
            NetFault::Eagain => (FaultClass::NetEagain, SysError::WouldBlock),
            NetFault::Partitioned => (FaultClass::NetPartition, SysError::WouldBlock),
            NetFault::Reset => {
                // The reset is real: the peer connection shuts down, so
                // later operations on this descriptor behave exactly as
                // they would after a genuine remote close.
                let _ = inner.net.close(socket);
                (FaultClass::NetReset, SysError::ConnectionClosed)
            }
        };
        drop(inner);
        if fault.announce {
            self.notify_chaos(class, fault.site);
        }
        Err(error)
    }

    // ------------------------------------------------------------------
    // Revocable calls.
    // ------------------------------------------------------------------

    /// `read(fd, len)` on a regular file; advances the position.  The chaos
    /// plan may shorten the read (serving fewer bytes than requested, never
    /// zero); since file reads are *revocable*, a replayed re-execution
    /// re-issues the call against restored chaos counters and shortens it
    /// identically.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::BadFd`], [`SysError::NotAFile`] or
    /// [`SysError::NotFound`].
    pub fn file_read(&self, fd: i32, len: usize) -> Result<Vec<u8>, SysError> {
        let mut inner = self.inner.lock();
        let (name, pos) = Self::file_of(&inner, fd)?;
        let short = inner.chaos.as_mut().and_then(|engine| engine.on_file_read(fd, len));
        let effective = short.map_or(len, |(n, _)| n);
        let data = inner.vfs.read_at(&name, pos, effective)?;
        inner.fds.get_mut(fd)?.pos = pos + data.len() as u64;
        drop(inner);
        if let Some((_, site)) = short {
            self.notify_chaos(FaultClass::ShortRead, site);
        }
        Ok(data)
    }

    /// `write(fd, data)` on a regular file; advances the position.  The
    /// chaos plan may shorten the write (persisting only a prefix, never
    /// zero bytes); the position advances by the bytes actually written, so
    /// callers looping on the return value stay correct.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::BadFd`], [`SysError::NotAFile`] or
    /// [`SysError::NotFound`].
    pub fn file_write(&self, fd: i32, data: &[u8]) -> Result<usize, SysError> {
        let mut inner = self.inner.lock();
        let (name, pos) = Self::file_of(&inner, fd)?;
        let short = inner
            .chaos
            .as_mut()
            .and_then(|engine| engine.on_file_write(fd, data.len()));
        let effective = short.map_or(data.len(), |(n, _)| n);
        let written = inner.vfs.write_at(&name, pos, &data[..effective])?;
        inner.fds.get_mut(fd)?.pos = pos + written as u64;
        drop(inner);
        if let Some((_, site)) = short {
            self.notify_chaos(FaultClass::ShortWrite, site);
        }
        Ok(written)
    }

    /// `lseek(fd, offset, whence)`; returns the new position.
    ///
    /// The runtime treats repositioning seeks as irrevocable (epoch
    /// boundary) and position queries (`Cur` with offset 0) as repeatable.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::BadFd`], [`SysError::NotAFile`],
    /// [`SysError::NotFound`] or [`SysError::InvalidArgument`] for seeks
    /// before the start of the file.
    pub fn lseek(&self, fd: i32, offset: i64, whence: Whence) -> Result<u64, SysError> {
        let mut inner = self.inner.lock();
        let (name, pos) = Self::file_of(&inner, fd)?;
        let size = inner.vfs.size(&name)? as i64;
        let base = match whence {
            Whence::Set => 0,
            Whence::Cur => pos as i64,
            Whence::End => size,
        };
        let target = base + offset;
        if target < 0 {
            return Err(SysError::InvalidArgument(format!("seek to negative offset {target}")));
        }
        inner.fds.get_mut(fd)?.pos = target as u64;
        Ok(target as u64)
    }

    // ------------------------------------------------------------------
    // Deferrable calls (executed here; *when* they run is the runtime's
    // decision).
    // ------------------------------------------------------------------

    /// `close(fd)`.  For sockets, the peer connection is also shut down and
    /// reclaimed.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::BadFd`] if `fd` is not open.
    pub fn close(&self, fd: i32) -> Result<(), SysError> {
        let mut inner = self.inner.lock();
        if let Ok(open) = inner.fds.get(fd) {
            if let OpenFileKind::Socket { socket } = open.kind {
                let _ = inner.net.close(socket);
                inner.net.reclaim(socket);
            }
        }
        inner.fds.close(fd)
    }

    /// `munmap(addr)`.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::BadMapping`] if the mapping does not exist.
    pub fn munmap(&self, addr: u64) -> Result<(), SysError> {
        self.inner.lock().mmap.munmap(addr)
    }

    // ------------------------------------------------------------------
    // Irrevocable calls.
    // ------------------------------------------------------------------

    /// `fork()`: returns the child pid (the simulated child never runs; the
    /// call exists to exercise the irrevocable path).
    pub fn fork(&self) -> u32 {
        let mut inner = self.inner.lock();
        let child = inner.next_child_pid;
        inner.next_child_pid += 1;
        child
    }

    // ------------------------------------------------------------------
    // Epoch support.
    // ------------------------------------------------------------------

    /// Captures the state that must be restored before a re-execution.
    pub fn snapshot(&self) -> OsSnapshot {
        let inner = self.inner.lock();
        OsSnapshot {
            positions: FilePositions(inner.fds.file_positions()),
            chaos: inner.chaos.as_ref().map(|engine| engine.revocable_state()),
        }
    }

    /// Restores a snapshot captured at the last epoch begin (rollback).
    /// Chaos counters consumed by re-issued calls roll back with the file
    /// positions; recordable-class counters persist, like the kernel tables
    /// their calls mutate.
    pub fn restore(&self, snapshot: &OsSnapshot) {
        let mut inner = self.inner.lock();
        inner.fds.restore_positions(&snapshot.positions.0);
        if let (Some(engine), Some(state)) = (inner.chaos.as_mut(), snapshot.chaos.as_ref()) {
            engine.restore_revocable(state);
        }
    }

    fn socket_of(inner: &OsInner, fd: i32) -> Result<SocketId, SysError> {
        match &inner.fds.get(fd)?.kind {
            OpenFileKind::Socket { socket } => Ok(*socket),
            OpenFileKind::File { .. } => Err(SysError::NotASocket(fd)),
        }
    }

    fn file_of(inner: &OsInner, fd: i32) -> Result<(String, u64), SysError> {
        let open = inner.fds.get(fd)?;
        match &open.kind {
            OpenFileKind::File { name } => Ok((name.clone(), open.pos)),
            OpenFileKind::Socket { .. } => Err(SysError::NotAFile(fd)),
        }
    }
}

impl Default for SimOs {
    fn default() -> Self {
        SimOs::new(4242)
    }
}

impl std::fmt::Debug for SimOs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimOs")
            .field("namespace", &self.namespace)
            .field("chaos_active", &self.chaos_active.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn os_with_file() -> SimOs {
        let os = SimOs::new(100);
        os.create_file("data.txt", b"abcdefghijklmnopqrstuvwxyz".to_vec());
        os
    }

    #[test]
    fn pid_is_repeatable_and_fork_is_not() {
        let os = SimOs::new(77);
        assert_eq!(os.getpid(), 77);
        assert_eq!(os.getpid(), 77);
        let c1 = os.fork();
        let c2 = os.fork();
        assert_ne!(c1, c2);
    }

    #[test]
    fn namespaces_tag_kernels_without_changing_results() {
        let default_ns = SimOs::new(1000);
        let tenant = SimOs::with_namespace(1000, 3);
        assert_eq!(default_ns.namespace(), 0);
        assert_eq!(tenant.namespace(), 3);
        // The tag never leaks into simulated results: same pid, same fork
        // sequence, independent file tables.
        assert_eq!(default_ns.getpid(), tenant.getpid());
        assert_eq!(default_ns.fork(), tenant.fork());
        tenant.create_file("tenant-only.txt", vec![1, 2, 3]);
        assert!(default_ns.open("tenant-only.txt").is_err());
        // The namespace survives the reboot-to-quiescence reset.
        tenant.reset();
        assert_eq!(tenant.namespace(), 3);
        assert!(tenant.open("tenant-only.txt").is_err(), "reset drops staged files");
    }

    #[test]
    fn file_reads_and_writes_track_positions() {
        let os = os_with_file();
        let fd = os.open("data.txt").unwrap();
        assert_eq!(os.file_read(fd, 5).unwrap(), b"abcde");
        assert_eq!(os.file_read(fd, 5).unwrap(), b"fghij");
        os.file_write(fd, b"XY").unwrap();
        assert_eq!(os.lseek(fd, 0, Whence::Cur).unwrap(), 12);
        assert_eq!(os.file_contents("data.txt").unwrap()[10..12], *b"XY");
        os.lseek(fd, -2, Whence::End).unwrap();
        assert_eq!(os.file_read(fd, 10).unwrap(), b"yz");
        assert!(os.lseek(fd, -100, Whence::Set).is_err());
        assert!(os.open("missing.txt").is_err());
    }

    #[test]
    fn position_snapshot_restores_reads_for_replay() {
        let os = os_with_file();
        let fd = os.open("data.txt").unwrap();
        os.file_read(fd, 3).unwrap();
        // Epoch begin: capture positions.
        let snap = os.snapshot();
        let original = os.file_read(fd, 5).unwrap();
        // Rollback: restore positions, the re-issued read returns the same
        // data (revocable system call).
        os.restore(&snap);
        let replayed = os.file_read(fd, 5).unwrap();
        assert_eq!(original, replayed);
    }

    #[test]
    fn descriptor_values_depend_on_close_timing() {
        // The motivation for deferring close: an eager close changes which
        // descriptor the next open returns.
        let eager = os_with_file();
        let a = eager.open("data.txt").unwrap();
        eager.close(a).unwrap();
        let b = eager.open("data.txt").unwrap();
        assert_eq!(a, b, "descriptor is reused after close");

        let deferred = os_with_file();
        let a = deferred.open("data.txt").unwrap();
        // close deferred past the second open...
        let b = deferred.open("data.txt").unwrap();
        assert_ne!(a, b, "without the close the descriptor advances");
        deferred.close(a).unwrap();
        assert_eq!(deferred.open_fd_count(), 1);
    }

    #[test]
    fn sockets_connect_read_write_and_close() {
        let os = SimOs::default();
        os.register_peer("kv:11211", PeerScript::Echo { response_len: 16 });
        let fd = os.socket_connect("kv:11211").unwrap();
        assert!(os.poll_readable(&[fd]).is_empty());
        os.socket_write(fd, b"get k\r\n").unwrap();
        assert_eq!(os.poll_readable(&[fd]), vec![fd]);
        assert_eq!(os.socket_read(fd, 64).unwrap().len(), 16);
        // File operations on a socket are rejected, and vice versa.
        assert!(os.file_read(fd, 1).is_err());
        os.create_file("f", vec![1, 2, 3]);
        let ffd = os.open("f").unwrap();
        assert!(os.socket_read(ffd, 1).is_err());
        assert!(os.fcntl_get(fd).is_ok());
        os.close(fd).unwrap();
        assert!(os.socket_read(fd, 1).is_err());
    }

    #[test]
    fn server_accepts_enqueued_clients() {
        let os = SimOs::default();
        os.register_peer(
            "httpd:80",
            PeerScript::Client {
                seed: 1,
                requests: 1,
                request_len: 32,
            },
        );
        os.enqueue_clients("httpd:80", 1);
        assert_eq!(os.pending_clients("httpd:80"), 1);
        let conn = os.socket_accept("httpd:80").unwrap();
        assert_eq!(os.socket_read(conn, 64).unwrap().len(), 32);
        assert!(matches!(os.socket_accept("httpd:80"), Err(SysError::WouldBlock)));
    }

    #[test]
    fn mmap_and_munmap_and_dup() {
        let os = os_with_file();
        let m = os.mmap(8192).unwrap();
        os.munmap(m).unwrap();
        assert!(os.munmap(m).is_err());
        let fd = os.open("data.txt").unwrap();
        os.file_read(fd, 4).unwrap();
        let dup = os.dup(fd).unwrap();
        assert_eq!(os.lseek(dup, 0, Whence::Cur).unwrap(), 4);
    }

    #[test]
    fn fd_limit_can_be_raised() {
        let os = SimOs::default();
        os.create_file("f", vec![0]);
        os.raise_fd_limit(2000);
        for _ in 0..500 {
            os.open("f").unwrap();
        }
        assert_eq!(os.open_fd_count(), 500);
    }

    #[test]
    fn gettime_is_monotonic() {
        let os = SimOs::default();
        let a = os.gettime_ns();
        let b = os.gettime_ns();
        assert!(b > a);
    }

    #[test]
    fn staged_inputs_roundtrip_into_a_fresh_kernel() {
        let os = SimOs::new(100);
        os.raise_fd_limit(512);
        os.create_file("b.txt", b"bravo".to_vec());
        os.create_file("a.txt", b"alpha".to_vec());
        os.register_peer("kv:11211", PeerScript::Echo { response_len: 8 });
        os.register_peer(
            "httpd:80",
            PeerScript::Client {
                seed: 1,
                requests: 2,
                request_len: 16,
            },
        );
        os.enqueue_clients("httpd:80", 2);

        let inputs = os.staged_inputs();
        assert_eq!(inputs.files[0].0, "a.txt", "files are sorted");
        assert_eq!(inputs.fd_limit, 512);

        let twin = SimOs::new(100);
        twin.restore_inputs(&inputs);
        assert_eq!(twin.staged_inputs(), inputs);
        assert_eq!(twin.file_contents("b.txt").unwrap(), b"bravo");
        assert_eq!(twin.pending_clients("httpd:80"), 2);
        // The restored kernel behaves identically to the original.
        let a = os.socket_connect("kv:11211").unwrap();
        let b = twin.socket_connect("kv:11211").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn chaos_shortens_file_io_and_counts_injections() {
        use ireplayer_chaos::ChaosProfile;
        let os = os_with_file();
        let mut profile = ChaosProfile::quiet();
        profile.short_read_per_mille = 1000;
        profile.short_write_per_mille = 1000;
        os.install_chaos(ChaosPlan::compile(7, profile));
        let hits = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let seen = hits.clone();
        os.set_chaos_observer(Box::new(move |_, _| {
            seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }));
        let fd = os.open("data.txt").unwrap();
        // A 10-byte read is shortened to 5; the position only advances by
        // the bytes actually served, so the next read resumes at byte 5.
        assert_eq!(os.file_read(fd, 10).unwrap(), b"abcde");
        assert_eq!(os.file_read(fd, 10).unwrap(), b"fghij");
        // A 4-byte write persists only its first 2 bytes.
        assert_eq!(os.file_write(fd, b"WXYZ").unwrap(), 2);
        assert_eq!(os.file_contents("data.txt").unwrap()[10..13], *b"WXm");
        let injected = os.chaos_injected();
        let of = |class: FaultClass| injected.iter().find(|(c, _)| *c == class).unwrap().1;
        assert_eq!(of(FaultClass::ShortRead), 2);
        assert_eq!(of(FaultClass::ShortWrite), 1);
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 3);
    }

    #[test]
    fn chaos_resets_close_the_connection_for_real() {
        use ireplayer_chaos::ChaosProfile;
        let os = SimOs::default();
        os.register_peer("kv:11211", PeerScript::Echo { response_len: 8 });
        let fd = os.socket_connect("kv:11211").unwrap();
        let mut profile = ChaosProfile::quiet();
        profile.net_reset_per_mille = 1000;
        os.install_chaos(ChaosPlan::compile(3, profile));
        assert!(matches!(os.socket_write(fd, b"x"), Err(SysError::ConnectionClosed)));
        // The connection is genuinely gone: even though the plan would fire
        // again, a plain write now fails the same way a real peer-close
        // does, and reads drain to empty.
        let after = os.socket_write(fd, b"y");
        assert!(after.is_err());
    }

    #[test]
    fn chaos_snapshot_restores_short_read_decisions() {
        use ireplayer_chaos::ChaosProfile;
        let os = os_with_file();
        let mut profile = ChaosProfile::quiet();
        profile.short_read_per_mille = 500;
        os.install_chaos(ChaosPlan::compile(11, profile));
        let fd = os.open("data.txt").unwrap();
        os.file_read(fd, 4).unwrap();
        let snap = os.snapshot();
        assert!(snap.chaos.is_some(), "chaos counters ride in the snapshot");
        let original: Vec<_> = (0..5).map(|_| os.file_read(fd, 4).unwrap()).collect();
        os.restore(&snap);
        let replayed: Vec<_> = (0..5).map(|_| os.file_read(fd, 4).unwrap()).collect();
        assert_eq!(original, replayed, "re-issued reads repeat chaos decisions");
    }

    #[test]
    fn chaos_plan_survives_reset_with_fresh_counters() {
        use ireplayer_chaos::ChaosProfile;
        let os = os_with_file();
        let mut profile = ChaosProfile::quiet();
        profile.fd_pressure_per_mille = 1000;
        let plan = ChaosPlan::compile(5, profile);
        os.install_chaos(plan.clone());
        assert!(matches!(os.open("data.txt"), Err(SysError::TooManyFiles { .. })));
        os.reset();
        assert_eq!(os.chaos_plan().as_ref(), Some(&plan), "reset keeps the plan");
        assert!(
            os.chaos_injected().iter().all(|&(_, n)| n == 0),
            "...but zeroes the counters"
        );
        os.create_file("data.txt", vec![1]);
        assert!(matches!(os.open("data.txt"), Err(SysError::TooManyFiles { .. })));
    }

    #[test]
    fn chaos_alloc_denial_is_per_thread_and_gated() {
        use ireplayer_chaos::ChaosProfile;
        let os = SimOs::default();
        assert!(!os.chaos_alloc_denied(1), "no plan, no denial");
        let mut profile = ChaosProfile::quiet();
        profile.alloc_fail_nth = 2;
        os.install_chaos(ChaosPlan::compile(9, profile));
        assert!(!os.chaos_alloc_denied(1));
        assert!(os.chaos_alloc_denied(1));
        assert!(!os.chaos_alloc_denied(1), "fires once per thread");
        assert!(!os.chaos_alloc_denied(2));
        assert!(os.chaos_alloc_denied(2));
    }

    #[test]
    fn open_create_makes_missing_files() {
        let os = SimOs::default();
        let fd = os.open_create("out.bin").unwrap();
        os.file_write(fd, b"payload").unwrap();
        assert_eq!(os.file_contents("out.bin").unwrap(), b"payload");
        // Re-opening an existing file does not truncate it.
        let fd2 = os.open_create("out.bin").unwrap();
        assert_eq!(os.file_read(fd2, 7).unwrap(), b"payload");
    }
}
