//! A virtual wall clock whose readings are non-repeatable (paper §2.2.3).
//!
//! `gettimeofday` is the paper's canonical *recordable* system call: two
//! invocations never return the same value, so the recorded result must be
//! returned during replay.  The virtual clock mixes a monotonic counter with
//! real elapsed time, which makes "forgot to record the clock" bugs visible
//! in tests: a replay that re-invokes the clock observes a different value
//! than the original execution did.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonically increasing nanosecond clock.
#[derive(Debug)]
pub struct VirtualClock {
    origin: Instant,
    base_ns: u64,
    ticks: AtomicU64,
    /// Accumulated forward jumps injected by the chaos plane (NTP-step
    /// analogue).  Jumps are only ever forward, preserving monotonicity.
    jump_ns: AtomicU64,
}

impl VirtualClock {
    /// Creates a clock whose first reading is at least `base_ns`.
    pub fn new(base_ns: u64) -> Self {
        VirtualClock {
            origin: Instant::now(),
            base_ns,
            ticks: AtomicU64::new(0),
            jump_ns: AtomicU64::new(0),
        }
    }

    /// Returns the current time in nanoseconds.
    ///
    /// Every call advances an internal counter, so consecutive readings are
    /// strictly increasing even if real time has not advanced.
    pub fn now_ns(&self) -> u64 {
        let tick = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        let elapsed = self.origin.elapsed().as_nanos() as u64;
        self.base_ns + elapsed + tick + self.jump_ns.load(Ordering::Relaxed)
    }

    /// Number of times the clock has been read.
    pub fn readings(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Steps the clock forward by `ns` nanoseconds: every later reading
    /// includes the jump.  The chaos plane uses this to inject clock jumps;
    /// the outcome is recorded like any other `gettimeofday` result, so
    /// replay serves the jumped reading from the log.
    pub fn advance(&self, ns: u64) {
        self.jump_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Resets the reading counter and accumulated jumps to zero (runtime
    /// warm-relaunch path).
    ///
    /// The real-time component keeps advancing -- wall time cannot be
    /// rolled back -- so readings remain monotonically increasing across
    /// the reset; only the per-run tick count starts over.
    pub fn reset(&self) {
        self.ticks.store(0, Ordering::Relaxed);
        self.jump_ns.store(0, Ordering::Relaxed);
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock::new(1_600_000_000_000_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readings_are_strictly_increasing() {
        let clock = VirtualClock::new(1000);
        let mut last = 0;
        for _ in 0..100 {
            let now = clock.now_ns();
            assert!(now > last);
            last = now;
        }
        assert_eq!(clock.readings(), 100);
    }

    #[test]
    fn readings_start_at_the_base() {
        let clock = VirtualClock::new(5_000_000);
        assert!(clock.now_ns() >= 5_000_000);
        let default_clock = VirtualClock::default();
        assert!(default_clock.now_ns() >= 1_600_000_000_000_000_000);
    }

    #[test]
    fn jumps_step_every_later_reading_and_reset_clears_them() {
        let clock = VirtualClock::new(1000);
        let before = clock.now_ns();
        clock.advance(10_000_000_000);
        let after = clock.now_ns();
        assert!(after >= before + 10_000_000_000, "the jump lands in full");
        clock.advance(5);
        assert!(clock.now_ns() > after);
        clock.reset();
        assert!(
            clock.now_ns() < 10_000_000_000 + 1000 + 1_000_000_000,
            "reset drops accumulated jumps"
        );
    }

    #[test]
    fn two_clocks_do_not_repeat_each_other() {
        // The point of a recordable call: re-invoking it (here, on a clock
        // re-created in the same state) does not reproduce the original
        // values, so replay must serve readings from the log.
        let a = VirtualClock::new(0);
        let first: Vec<u64> = (0..5).map(|_| a.now_ns()).collect();
        let b = VirtualClock::new(0);
        let second: Vec<u64> = (0..5).map(|_| b.now_ns()).collect();
        // Values themselves may coincidentally overlap, but the sequences
        // keep moving forward; assert monotonicity across the board.
        assert!(first.windows(2).all(|w| w[0] < w[1]));
        assert!(second.windows(2).all(|w| w[0] < w[1]));
    }
}
