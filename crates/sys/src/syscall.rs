//! System-call descriptors and their classification (paper §2.2.3).

use serde::{Deserialize, Serialize};

use ireplayer_log::SyscallClass;

/// The system calls exposed by the simulated OS.
///
/// Each variant corresponds to a `ThreadCtx` method in the runtime crate.
/// The classification may depend on parameters, which is why `Lseek` and
/// `Fcntl` carry the information the classifier needs -- mirroring the
/// paper's example of `fcntl(F_GETOWN)` (repeatable) versus
/// `fcntl(F_DUPFD)` (recordable), and of a repositioning `lseek` being
/// treated as irrevocable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyscallKind {
    /// `getpid()` -- repeatable in the in-situ setting.
    GetPid,
    /// `gettimeofday()` / `clock_gettime()` -- recordable.
    GetTime,
    /// `open(path)` -- recordable (the descriptor value is replayed from the
    /// log; the underlying open is not re-issued because the file is still
    /// open in the in-situ process).
    Open,
    /// `read(fd)` on a regular file -- revocable (re-issued after restoring
    /// file positions).
    FileRead,
    /// `write(fd)` on a regular file -- revocable.
    FileWrite,
    /// `lseek(fd)`; a repositioning seek cannot be rolled back without
    /// invalidating earlier reads, so it is irrevocable; a query
    /// (`SEEK_CUR` with offset 0) is repeatable.
    Lseek {
        /// `true` if the call changes the file position.
        repositions: bool,
    },
    /// `close(fd)` -- deferrable (issued at the next epoch begin).
    Close,
    /// `dup(fd)` -- recordable (descriptor values must match the log).
    Dup,
    /// `fcntl(fd, F_GETOWN)`-style queries -- repeatable.
    FcntlGet,
    /// `fcntl(fd, F_DUPFD)`-style descriptor duplication -- recordable.
    FcntlDupFd,
    /// `connect()` -- recordable.
    SocketConnect,
    /// `accept()` on a listening socket -- recordable.
    SocketAccept,
    /// `recv()`/`read()` on a socket -- recordable (the data cannot be
    /// re-read from the network).
    SocketRead,
    /// `send()`/`write()` on a socket -- recordable (the bytes must not be
    /// re-transmitted during replay).
    SocketWrite,
    /// `epoll_wait()`-style readiness query -- recordable.
    PollWait,
    /// `mmap()` -- recordable (the mapping address must match the log;
    /// in-situ the mapping is still present during replay).
    Mmap,
    /// `munmap()` -- deferrable.
    Munmap,
    /// `fork()` -- irrevocable.
    Fork,
    /// `execve()` -- irrevocable.
    Exec,
    /// Process exit -- treated as the end of the last epoch.
    Exit,
}

impl SyscallKind {
    /// Returns the record/replay policy for this call (§2.2.3).
    pub fn classify(self) -> SyscallClass {
        use SyscallClass::*;
        match self {
            SyscallKind::GetPid | SyscallKind::FcntlGet => Repeatable,
            SyscallKind::Lseek { repositions: false } => Repeatable,
            SyscallKind::GetTime
            | SyscallKind::Open
            | SyscallKind::Dup
            | SyscallKind::FcntlDupFd
            | SyscallKind::SocketConnect
            | SyscallKind::SocketAccept
            | SyscallKind::SocketRead
            | SyscallKind::SocketWrite
            | SyscallKind::PollWait
            | SyscallKind::Mmap => Recordable,
            SyscallKind::FileRead | SyscallKind::FileWrite => Revocable,
            SyscallKind::Close | SyscallKind::Munmap => Deferrable,
            SyscallKind::Lseek { repositions: true } | SyscallKind::Fork | SyscallKind::Exec | SyscallKind::Exit => {
                Irrevocable
            }
        }
    }

    /// A small stable integer identifying the call in the event log.
    pub fn code(self) -> u16 {
        match self {
            SyscallKind::GetPid => 1,
            SyscallKind::GetTime => 2,
            SyscallKind::Open => 3,
            SyscallKind::FileRead => 4,
            SyscallKind::FileWrite => 5,
            SyscallKind::Lseek { repositions: false } => 6,
            SyscallKind::Lseek { repositions: true } => 7,
            SyscallKind::Close => 8,
            SyscallKind::Dup => 9,
            SyscallKind::FcntlGet => 10,
            SyscallKind::FcntlDupFd => 11,
            SyscallKind::SocketConnect => 12,
            SyscallKind::SocketAccept => 13,
            SyscallKind::SocketRead => 14,
            SyscallKind::SocketWrite => 15,
            SyscallKind::PollWait => 16,
            SyscallKind::Mmap => 17,
            SyscallKind::Munmap => 18,
            SyscallKind::Fork => 19,
            SyscallKind::Exec => 20,
            SyscallKind::Exit => 21,
        }
    }

    /// A human-readable name for reports and traces.
    pub fn name(self) -> &'static str {
        match self {
            SyscallKind::GetPid => "getpid",
            SyscallKind::GetTime => "gettimeofday",
            SyscallKind::Open => "open",
            SyscallKind::FileRead => "read",
            SyscallKind::FileWrite => "write",
            SyscallKind::Lseek { .. } => "lseek",
            SyscallKind::Close => "close",
            SyscallKind::Dup => "dup",
            SyscallKind::FcntlGet => "fcntl(F_GETOWN)",
            SyscallKind::FcntlDupFd => "fcntl(F_DUPFD)",
            SyscallKind::SocketConnect => "connect",
            SyscallKind::SocketAccept => "accept",
            SyscallKind::SocketRead => "recv",
            SyscallKind::SocketWrite => "send",
            SyscallKind::PollWait => "epoll_wait",
            SyscallKind::Mmap => "mmap",
            SyscallKind::Munmap => "munmap",
            SyscallKind::Fork => "fork",
            SyscallKind::Exec => "execve",
            SyscallKind::Exit => "exit",
        }
    }
}

/// A system call about to be issued, used when a component needs to reason
/// about a call before performing it (for instance the epoch manager asking
/// "does this call close the epoch?").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallRequest {
    /// Which call.
    pub kind: SyscallKind,
    /// Descriptor argument, when the call takes one.
    pub fd: Option<i32>,
}

impl SyscallRequest {
    /// Creates a request without a descriptor argument.
    pub fn new(kind: SyscallKind) -> Self {
        SyscallRequest { kind, fd: None }
    }

    /// Creates a request operating on `fd`.
    pub fn on_fd(kind: SyscallKind, fd: i32) -> Self {
        SyscallRequest { kind, fd: Some(fd) }
    }

    /// Classification of the requested call.
    pub fn classify(&self) -> SyscallClass {
        self.kind.classify()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ireplayer_log::SyscallClass::*;

    #[test]
    fn classification_matches_the_paper() {
        assert_eq!(SyscallKind::GetPid.classify(), Repeatable);
        assert_eq!(SyscallKind::GetTime.classify(), Recordable);
        assert_eq!(SyscallKind::SocketRead.classify(), Recordable);
        assert_eq!(SyscallKind::SocketWrite.classify(), Recordable);
        assert_eq!(SyscallKind::FileRead.classify(), Revocable);
        assert_eq!(SyscallKind::FileWrite.classify(), Revocable);
        assert_eq!(SyscallKind::Close.classify(), Deferrable);
        assert_eq!(SyscallKind::Munmap.classify(), Deferrable);
        assert_eq!(SyscallKind::Fork.classify(), Irrevocable);
        assert_eq!(SyscallKind::Exec.classify(), Irrevocable);
    }

    #[test]
    fn parameter_dependent_classification() {
        // The paper's fcntl example: F_GETOWN is repeatable, F_DUPFD is not.
        assert_eq!(SyscallKind::FcntlGet.classify(), Repeatable);
        assert_eq!(SyscallKind::FcntlDupFd.classify(), Recordable);
        // A repositioning lseek is irrevocable; a position query is not.
        assert_eq!(SyscallKind::Lseek { repositions: true }.classify(), Irrevocable);
        assert_eq!(SyscallKind::Lseek { repositions: false }.classify(), Repeatable);
    }

    #[test]
    fn codes_are_unique() {
        let all = [
            SyscallKind::GetPid,
            SyscallKind::GetTime,
            SyscallKind::Open,
            SyscallKind::FileRead,
            SyscallKind::FileWrite,
            SyscallKind::Lseek { repositions: false },
            SyscallKind::Lseek { repositions: true },
            SyscallKind::Close,
            SyscallKind::Dup,
            SyscallKind::FcntlGet,
            SyscallKind::FcntlDupFd,
            SyscallKind::SocketConnect,
            SyscallKind::SocketAccept,
            SyscallKind::SocketRead,
            SyscallKind::SocketWrite,
            SyscallKind::PollWait,
            SyscallKind::Mmap,
            SyscallKind::Munmap,
            SyscallKind::Fork,
            SyscallKind::Exec,
            SyscallKind::Exit,
        ];
        let mut codes: Vec<u16> = all.iter().map(|k| k.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len());
        for kind in all {
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn requests_carry_descriptors() {
        let r = SyscallRequest::on_fd(SyscallKind::Close, 7);
        assert_eq!(r.fd, Some(7));
        assert_eq!(r.classify(), Deferrable);
        let plain = SyscallRequest::new(SyscallKind::Fork);
        assert_eq!(plain.fd, None);
        assert_eq!(plain.classify(), Irrevocable);
    }
}
