//! Simulated operating-system substrate for the iReplayer runtime.
//!
//! The original system runs on Linux and handles real system calls by
//! classifying them into five categories (paper §2.2.3).  This crate
//! provides an in-memory operating system with the same *hazards* the
//! classification exists to handle, so that every branch of the record/replay
//! policy is exercised:
//!
//! * an in-memory virtual file system with per-open-file positions, so that
//!   file reads/writes are **revocable** (re-issued during replay after the
//!   positions saved at epoch begin are restored) and a repositioning
//!   `lseek` is **irrevocable**;
//! * a file-descriptor table that reuses the lowest free descriptor, so that
//!   a `close` issued eagerly would make descriptor values unreproducible --
//!   which is why `close` (and `munmap`) are **deferrable** and postponed to
//!   the next epoch boundary;
//! * scripted network peers whose socket reads and writes are
//!   **recordable**: re-invoking them would return different data, so the
//!   recorded results are returned during replay;
//! * a virtual clock whose readings are **recordable**;
//! * process identifiers that are **repeatable** in the in-situ setting;
//! * `fork`/`exec`, which are **irrevocable** and close the epoch.
//!
//! The [`SimOs`] facade bundles these subsystems; the runtime crate talks to
//! it through typed methods and consults [`SyscallKind::classify`] for the
//! record/replay policy of each call.
//!
//! A seeded fault-injection plan (the `ireplayer-chaos` crate) can be
//! installed on a kernel with [`SimOs::install_chaos`]; every eligible call
//! then consults the plan at the call boundary, which keeps injected
//! outcomes inside the ordinary record/replay classification: recordable
//! faults are served from the log during replay, revocable faults are
//! re-derived from snapshot-restored counters.

pub mod clock;
pub mod error;
pub mod mmap;
pub mod net;
pub mod os;
pub mod syscall;
pub mod vfs;

pub use clock::VirtualClock;
pub use error::SysError;
pub use ireplayer_chaos::{
    shrink_candidates, ChaosPlan, ChaosPlanError, ChaosProfile, ChaosRevocableState, FaultClass, ShrinkStep,
};
pub use mmap::{MmapRegion, MmapTable};
pub use net::{NetSim, PeerScript, SocketId};
pub use os::{ChaosObserver, FilePositions, OsInputs, OsSnapshot, SimOs};
pub use syscall::{SyscallKind, SyscallRequest};
pub use vfs::{Fd, FdTable, OpenFileKind, Vfs, Whence};
