//! Error type for the simulated operating system.

use std::fmt;

/// Errors returned by simulated system calls.
///
/// These play the role of `errno` values; the runtime converts them into
/// negative return values or surfaces them to the application, depending on
/// the call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SysError {
    /// The file descriptor is not open.
    BadFd(i32),
    /// The named file does not exist.
    NotFound(String),
    /// The process would exceed its open-file limit.
    TooManyFiles {
        /// The configured limit.
        limit: usize,
    },
    /// An argument was invalid for the call.
    InvalidArgument(String),
    /// A non-blocking operation would have blocked.
    WouldBlock,
    /// The peer closed the connection (socket reads return 0 afterwards).
    ConnectionClosed,
    /// The descriptor does not refer to a socket.
    NotASocket(i32),
    /// The descriptor does not refer to a regular file.
    NotAFile(i32),
    /// The simulated memory-map region is exhausted.
    MmapExhausted {
        /// Bytes requested.
        requested: u64,
    },
    /// An unmap was requested for an unknown mapping.
    BadMapping(u64),
}

impl fmt::Display for SysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SysError::BadFd(fd) => write!(f, "bad file descriptor {fd}"),
            SysError::NotFound(name) => write!(f, "no such file: {name}"),
            SysError::TooManyFiles { limit } => {
                write!(f, "too many open files (limit {limit})")
            }
            SysError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
            SysError::WouldBlock => write!(f, "operation would block"),
            SysError::ConnectionClosed => write!(f, "connection closed by peer"),
            SysError::NotASocket(fd) => write!(f, "descriptor {fd} is not a socket"),
            SysError::NotAFile(fd) => write!(f, "descriptor {fd} is not a regular file"),
            SysError::MmapExhausted { requested } => {
                write!(f, "mmap region exhausted while requesting {requested} bytes")
            }
            SysError::BadMapping(id) => write!(f, "unknown memory mapping {id}"),
        }
    }
}

impl std::error::Error for SysError {}

impl SysError {
    /// Stable positive wire code, used by the runtime to log recordable
    /// error outcomes (as a negated return value) so replay can serve the
    /// same error without re-invoking the kernel.
    pub fn wire_code(&self) -> i64 {
        match self {
            SysError::BadFd(_) => 1,
            SysError::NotFound(_) => 2,
            SysError::TooManyFiles { .. } => 3,
            SysError::InvalidArgument(_) => 4,
            SysError::WouldBlock => 5,
            SysError::ConnectionClosed => 6,
            SysError::NotASocket(_) => 7,
            SysError::NotAFile(_) => 8,
            SysError::MmapExhausted { .. } => 9,
            SysError::BadMapping(_) => 10,
        }
    }

    /// The variant payload as log bytes: a little-endian integer for the
    /// numeric payloads, UTF-8 for the string ones, empty for unit variants.
    pub fn wire_payload(&self) -> Vec<u8> {
        match self {
            SysError::BadFd(fd) | SysError::NotASocket(fd) | SysError::NotAFile(fd) => {
                i64::from(*fd).to_le_bytes().to_vec()
            }
            SysError::NotFound(s) | SysError::InvalidArgument(s) => s.as_bytes().to_vec(),
            SysError::TooManyFiles { limit } => (*limit as u64).to_le_bytes().to_vec(),
            SysError::MmapExhausted { requested } => requested.to_le_bytes().to_vec(),
            SysError::BadMapping(id) => id.to_le_bytes().to_vec(),
            SysError::WouldBlock | SysError::ConnectionClosed => Vec::new(),
        }
    }

    /// Rebuilds an error from its wire code and payload.  Unknown codes and
    /// malformed payloads degrade to [`SysError::InvalidArgument`] rather
    /// than panicking: a corrupted log entry surfaces as a visible error,
    /// not an abort.
    pub fn from_wire(code: i64, payload: &[u8]) -> SysError {
        let int = |bytes: &[u8]| -> u64 {
            let mut buf = [0u8; 8];
            let n = bytes.len().min(8);
            buf[..n].copy_from_slice(&bytes[..n]);
            u64::from_le_bytes(buf)
        };
        match code {
            1 => SysError::BadFd(int(payload) as i32),
            2 => SysError::NotFound(String::from_utf8_lossy(payload).into_owned()),
            3 => SysError::TooManyFiles {
                limit: int(payload) as usize,
            },
            4 => SysError::InvalidArgument(String::from_utf8_lossy(payload).into_owned()),
            5 => SysError::WouldBlock,
            6 => SysError::ConnectionClosed,
            7 => SysError::NotASocket(int(payload) as i32),
            8 => SysError::NotAFile(int(payload) as i32),
            9 => SysError::MmapExhausted {
                requested: int(payload),
            },
            10 => SysError::BadMapping(int(payload)),
            other => SysError::InvalidArgument(format!("unknown logged error code {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_every_variant() {
        let variants = [
            SysError::BadFd(3),
            SysError::NotFound("x".into()),
            SysError::TooManyFiles { limit: 1024 },
            SysError::InvalidArgument("whence".into()),
            SysError::WouldBlock,
            SysError::ConnectionClosed,
            SysError::NotASocket(4),
            SysError::NotAFile(5),
            SysError::MmapExhausted { requested: 64 },
            SysError::BadMapping(9),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SysError>();
    }

    #[test]
    fn wire_roundtrip_preserves_every_variant() {
        let variants = [
            SysError::BadFd(-7),
            SysError::NotFound("logs/kv-3.txt".into()),
            SysError::TooManyFiles { limit: 256 },
            SysError::InvalidArgument("whence".into()),
            SysError::WouldBlock,
            SysError::ConnectionClosed,
            SysError::NotASocket(12),
            SysError::NotAFile(13),
            SysError::MmapExhausted { requested: 1 << 33 },
            SysError::BadMapping(42),
        ];
        for v in variants {
            let code = v.wire_code();
            assert!(code > 0, "codes must negate cleanly into return values");
            let back = SysError::from_wire(code, &v.wire_payload());
            assert_eq!(back, v);
        }
    }

    #[test]
    fn unknown_wire_codes_degrade_to_invalid_argument() {
        match SysError::from_wire(999, b"junk") {
            SysError::InvalidArgument(msg) => assert!(msg.contains("999")),
            other => panic!("expected InvalidArgument, got {other:?}"),
        }
    }
}
