//! Error type for the simulated operating system.

use std::fmt;

/// Errors returned by simulated system calls.
///
/// These play the role of `errno` values; the runtime converts them into
/// negative return values or surfaces them to the application, depending on
/// the call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SysError {
    /// The file descriptor is not open.
    BadFd(i32),
    /// The named file does not exist.
    NotFound(String),
    /// The process would exceed its open-file limit.
    TooManyFiles {
        /// The configured limit.
        limit: usize,
    },
    /// An argument was invalid for the call.
    InvalidArgument(String),
    /// A non-blocking operation would have blocked.
    WouldBlock,
    /// The peer closed the connection (socket reads return 0 afterwards).
    ConnectionClosed,
    /// The descriptor does not refer to a socket.
    NotASocket(i32),
    /// The descriptor does not refer to a regular file.
    NotAFile(i32),
    /// The simulated memory-map region is exhausted.
    MmapExhausted {
        /// Bytes requested.
        requested: u64,
    },
    /// An unmap was requested for an unknown mapping.
    BadMapping(u64),
}

impl fmt::Display for SysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SysError::BadFd(fd) => write!(f, "bad file descriptor {fd}"),
            SysError::NotFound(name) => write!(f, "no such file: {name}"),
            SysError::TooManyFiles { limit } => {
                write!(f, "too many open files (limit {limit})")
            }
            SysError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
            SysError::WouldBlock => write!(f, "operation would block"),
            SysError::ConnectionClosed => write!(f, "connection closed by peer"),
            SysError::NotASocket(fd) => write!(f, "descriptor {fd} is not a socket"),
            SysError::NotAFile(fd) => write!(f, "descriptor {fd} is not a regular file"),
            SysError::MmapExhausted { requested } => {
                write!(f, "mmap region exhausted while requesting {requested} bytes")
            }
            SysError::BadMapping(id) => write!(f, "unknown memory mapping {id}"),
        }
    }
}

impl std::error::Error for SysError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_every_variant() {
        let variants = [
            SysError::BadFd(3),
            SysError::NotFound("x".into()),
            SysError::TooManyFiles { limit: 1024 },
            SysError::InvalidArgument("whence".into()),
            SysError::WouldBlock,
            SysError::ConnectionClosed,
            SysError::NotASocket(4),
            SysError::NotAFile(5),
            SysError::MmapExhausted { requested: 64 },
            SysError::BadMapping(9),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SysError>();
    }
}
