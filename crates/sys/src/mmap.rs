//! Simulated anonymous memory mappings.
//!
//! `mmap` is *recordable* (the returned mapping must be the same during
//! replay -- in the in-situ setting the mapping still exists, so the call is
//! not re-issued) and `munmap` is *deferrable* (tearing the mapping down
//! eagerly would make the memory unavailable to the re-execution), exactly
//! the situation the paper describes for `munmap`.
//!
//! A chaos plan's mmap-exhaustion schedule (see
//! [`crate::os::SimOs::install_chaos`]) rejects a mapping request before it
//! reaches this table, modelling address-space exhaustion without
//! perturbing the table's deterministic base-address assignment.

use std::collections::BTreeMap;

use crate::error::SysError;

/// A live simulated mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmapRegion {
    /// Identifier (the simulated base address).
    pub id: u64,
    /// Length in bytes.
    pub len: u64,
}

/// The table of live mappings.
#[derive(Debug)]
pub struct MmapTable {
    regions: BTreeMap<u64, u64>,
    next_base: u64,
    capacity: u64,
    mapped: u64,
}

impl MmapTable {
    /// Creates a table that allows at most `capacity` mapped bytes.
    pub fn new(capacity: u64) -> Self {
        MmapTable {
            regions: BTreeMap::new(),
            next_base: 0x7f00_0000_0000,
            capacity,
            mapped: 0,
        }
    }

    /// Maps `len` bytes and returns the new region.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::MmapExhausted`] if the capacity would be
    /// exceeded, and [`SysError::InvalidArgument`] for zero-length requests.
    pub fn mmap(&mut self, len: u64) -> Result<MmapRegion, SysError> {
        if len == 0 {
            return Err(SysError::InvalidArgument("mmap of zero bytes".into()));
        }
        if self.mapped + len > self.capacity {
            return Err(SysError::MmapExhausted { requested: len });
        }
        let id = self.next_base;
        self.next_base += len.next_multiple_of(4096);
        self.mapped += len;
        self.regions.insert(id, len);
        Ok(MmapRegion { id, len })
    }

    /// Unmaps the region with base `id`.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::BadMapping`] if no such region exists.
    pub fn munmap(&mut self, id: u64) -> Result<(), SysError> {
        match self.regions.remove(&id) {
            Some(len) => {
                self.mapped -= len;
                Ok(())
            }
            None => Err(SysError::BadMapping(id)),
        }
    }

    /// Number of live mappings.
    pub fn live(&self) -> usize {
        self.regions.len()
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.mapped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_unmap_round_trip() {
        let mut table = MmapTable::new(1 << 20);
        let a = table.mmap(4096).unwrap();
        let b = table.mmap(8192).unwrap();
        assert_ne!(a.id, b.id);
        assert_eq!(table.live(), 2);
        assert_eq!(table.mapped_bytes(), 12288);
        table.munmap(a.id).unwrap();
        assert_eq!(table.live(), 1);
        assert_eq!(table.mapped_bytes(), 8192);
        assert!(matches!(table.munmap(a.id), Err(SysError::BadMapping(_))));
    }

    #[test]
    fn capacity_and_argument_checks() {
        let mut table = MmapTable::new(10_000);
        assert!(matches!(table.mmap(0), Err(SysError::InvalidArgument(_))));
        table.mmap(8000).unwrap();
        assert!(matches!(
            table.mmap(4000),
            Err(SysError::MmapExhausted { requested: 4000 })
        ));
    }

    #[test]
    fn identical_mmap_sequences_return_identical_ids() {
        let run = || {
            let mut table = MmapTable::new(1 << 20);
            (0..10)
                .map(|i| table.mmap(4096 * (i + 1)).unwrap().id)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
