//! Vendored stand-in for `serde_derive`.
//!
//! The build environment has no network access to crates.io, and nothing in
//! this workspace actually serializes data yet -- the `Serialize` /
//! `Deserialize` derives on ID newtypes exist so that logs and reports *can*
//! be exported later.  These derives therefore expand to nothing; the traits
//! in the vendored `serde` crate are markers.  Replace `vendor/serde*` with
//! the real crates (and delete this directory) once the registry is
//! reachable.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
