//! Vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build environment cannot reach crates.io, so this crate reproduces
//! the subset of the `parking_lot` 0.12 API the workspace uses: `Mutex`,
//! `RwLock`, and `Condvar` with guard-returning (non-poisoning) `lock()` /
//! `read()` / `write()` and `Condvar::wait`/`wait_for` taking `&mut
//! MutexGuard`.  Poison is swallowed (`PoisonError::into_inner`), matching
//! parking_lot's no-poisoning semantics.  Swap in the real `parking_lot`
//! once the registry is reachable; no source changes will be needed.

use std::fmt;
use std::ops::{Deref, DerefMut};
#[cfg(feature = "lock-count")]
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::PoisonError;
use std::time::Duration;

/// Process-wide count of successful mutex acquisitions (stand-in
/// extension, not part of the real parking_lot API).  The `record_path`
/// bench uses it to verify that the runtime's uncontended record fast path
/// performs zero mutex acquisitions.  Gated behind the `lock-count`
/// feature so that ordinary builds pay nothing -- a shared counter would
/// bounce a cache line across every core on every lock.
#[cfg(feature = "lock-count")]
static MUTEX_ACQUISITIONS: AtomicU64 = AtomicU64::new(0);

/// Returns the number of mutex acquisitions performed by this process so
/// far (stand-in extension; see [`MUTEX_ACQUISITIONS`]).  Only available
/// with the `lock-count` feature, so callers cannot silently read a
/// counter that is not being maintained.
#[cfg(feature = "lock-count")]
pub fn mutex_acquisitions() -> u64 {
    MUTEX_ACQUISITIONS.load(Ordering::Relaxed)
}

#[cfg(feature = "lock-count")]
fn count_acquisition() {
    MUTEX_ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(not(feature = "lock-count"))]
fn count_acquisition() {}

/// A mutual-exclusion primitive; `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        count_acquisition();
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let guard = self.inner.try_lock().ok().map(|g| MutexGuard { inner: Some(g) });
        if guard.is_some() {
            count_acquisition();
        }
        guard
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`Mutex`].  The inner `Option` lets [`Condvar::wait`] move the
/// underlying std guard out and back while the caller keeps `&mut` access.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A reader-writer lock; `read()`/`write()` return the guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable whose wait methods take `&mut MutexGuard`, as in
/// parking_lot.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        guard.inner = Some(self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken during wait");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Result of a timed wait: whether the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_round_trip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cv.wait_for(&mut started, Duration::from_millis(50));
        }
        drop(started);
        handle.join().unwrap();
        assert!(*lock.lock());
    }

    #[cfg(feature = "lock-count")]
    #[test]
    fn lock_acquisitions_are_counted() {
        let before = mutex_acquisitions();
        let m = Mutex::new(0u32);
        *m.lock() += 1;
        assert!(m.try_lock().is_some());
        assert!(mutex_acquisitions() >= before + 2);
    }

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }
}
