//! Vendored stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of the proptest 1.x API the workspace's property tests use:
//! the `proptest!` macro, `ProptestConfig::with_cases`, `any::<T>()`,
//! integer-range and tuple strategies, and `proptest::collection::vec`.
//! Values are drawn from a deterministic splitmix/xorshift generator seeded
//! by the case index, so every run explores the same inputs -- fitting for
//! a record-and-replay project, though it forgoes real proptest's random
//! exploration and shrinking.  Swap in the real `proptest` once the
//! registry is reachable.

/// Per-block configuration, set via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// Deterministic generator (splitmix64 seeding, xorshift64* stream).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(case: u32) -> Self {
        // splitmix64 of the case index gives well-spread, nonzero state.
        let mut z = (u64::from(case) << 1) ^ 0x9E37_79B9_7F4A_7C15;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy};
}

/// Asserts within a property body (panics on failure, unlike real proptest's
/// early-return-with-shrinking, which this stand-in does not implement).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = (<$crate::ProptestConfig as Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::deterministic(case);
                $( let $arg = $crate::Strategy::generate(&($strategy), &mut rng); )+
                $body
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u16..17, flags in crate::collection::vec(any::<bool>(), 1..5)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!flags.is_empty() && flags.len() < 5);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let draw = |case| {
            let mut rng = crate::TestRng::deterministic(case);
            crate::Strategy::generate(&(0u64..1000), &mut rng)
        };
        assert_eq!(draw(7), draw(7));
    }
}
