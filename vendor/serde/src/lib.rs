//! Vendored stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, and the workspace only uses
//! `serde` for `#[derive(Serialize, Deserialize)]` on plain-old-data types
//! (IDs, spans, classifications) so they can be exported later.  This crate
//! provides the two trait names as markers and re-exports no-op derives from
//! the vendored `serde_derive`.  Swap in the real `serde` (same version
//! requirement, `derive` feature) once the registry is reachable; no source
//! changes will be needed.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized (vendored stand-in).
pub trait Serialize {}

/// Marker for types that can be deserialized (vendored stand-in).
pub trait Deserialize<'de> {}
