//! Vendored stand-in for `criterion`.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of the criterion 0.5 API the workspace's benches use --
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup` configuration knobs, `BenchmarkId`, and `Bencher::iter`
//! -- backed by a simple wall-clock timer that prints one line per
//! benchmark.  Statistical analysis, plotting, and CLI filtering are out of
//! scope; swap in the real `criterion` once the registry is reachable.
//!
//! Beyond the upstream API, every completed benchmark is also collected in
//! a process-wide registry, and [`write_summary_json`] renders the
//! collected results as a machine-readable JSON file -- the workspace's
//! benches use it to emit `BENCH_<name>.json` summaries that CI uploads as
//! artifacts.

use std::fmt::Display;
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One completed benchmark: its full name (`group/function/parameter`),
/// the timed iteration count, and the mean wall-clock time per iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchResult {
    /// Full benchmark name.
    pub name: String,
    /// Timed iterations behind the mean.
    pub iters: u64,
    /// Mean nanoseconds per iteration.
    pub per_iter_ns: u128,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Every benchmark completed so far in this process, in execution order.
pub fn results() -> Vec<BenchResult> {
    RESULTS.lock().unwrap().clone()
}

/// One named scalar measured alongside the timings -- byte counts, ratios,
/// event totals -- so benches can publish quantities the wall clock cannot
/// capture.  Rendered under `"metrics"` by [`write_summary_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricResult {
    /// Metric name, conventionally `quantity/variant`.
    pub name: String,
    /// Measured value.
    pub value: f64,
}

static METRICS: Mutex<Vec<MetricResult>> = Mutex::new(Vec::new());

/// Records a named scalar metric for the summary, in addition to the timed
/// results.  Later recordings with the same name are kept as separate
/// entries, in execution order.
pub fn record_metric(name: impl Into<String>, value: f64) {
    METRICS.lock().unwrap().push(MetricResult {
        name: name.into(),
        value,
    });
}

/// Every metric recorded so far in this process, in execution order.
pub fn metrics() -> Vec<MetricResult> {
    METRICS.lock().unwrap().clone()
}

/// Writes the collected results as a machine-readable JSON summary:
/// `{"bench": <label>, "results": [{"name", "iters", "per_iter_ns"}, ...]}`.
/// When any metric was recorded via [`record_metric`], a `"metrics"`
/// section (`[{"name", "value"}, ...]`) follows the results; the
/// `"results"` schema itself never changes.
///
/// # Errors
///
/// Propagates the underlying file-system error.
pub fn write_summary_json(path: impl AsRef<Path>, label: &str) -> std::io::Result<()> {
    let results = RESULTS.lock().unwrap();
    let metrics = METRICS.lock().unwrap();
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"bench\": \"{}\",\n", escape_json(label)));
    body.push_str("  \"results\": [\n");
    for (index, result) in results.iter().enumerate() {
        let comma = if index + 1 < results.len() { "," } else { "" };
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"per_iter_ns\": {}}}{comma}\n",
            escape_json(&result.name),
            result.iters,
            result.per_iter_ns
        ));
    }
    if metrics.is_empty() {
        body.push_str("  ]\n}\n");
    } else {
        body.push_str("  ],\n  \"metrics\": [\n");
        for (index, metric) in metrics.iter().enumerate() {
            let comma = if index + 1 < metrics.len() { "," } else { "" };
            body.push_str(&format!(
                "    {{\"name\": \"{}\", \"value\": {}}}{comma}\n",
                escape_json(&metric.name),
                format_metric_value(metric.value)
            ));
        }
        body.push_str("  ]\n}\n");
    }
    std::fs::write(path, body)
}

/// Renders a metric value as valid JSON: integers without a fraction,
/// everything else in Rust's shortest round-trip notation, and non-finite
/// values (JSON has no spelling for them) as `null`.
fn format_metric_value(value: f64) -> String {
    if !value.is_finite() {
        "null".to_string()
    } else if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

fn escape_json(text: &str) -> String {
    text.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            control if control < ' ' => format!("\\u{:04x}", control as u32).chars().collect(),
            other => vec![other],
        })
        .collect()
}

/// Entry point handed to every benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benches a standalone function.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into_benchmark_id().0, 10, f);
        self
    }

    /// No-op, kept for API compatibility with `criterion_main!`.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Accepted for API compatibility; the stand-in uses a fixed warm-up.
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in times a fixed number of
    /// iterations instead of filling a measurement window.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id().0;
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Conversion accepted by `bench_function`: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // One timed sample of a few iterations keeps `cargo bench` runs short
    // while still catching panics and gross regressions; the real criterion
    // takes `sample_size` statistical samples.
    let iters = (sample_size as u64).clamp(1, 5);
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.checked_div(iters as u32).unwrap_or_default();
    println!("{name:<60} time: [{per_iter:?}/iter over {iters} iters]");
    RESULTS.lock().unwrap().push(BenchResult {
        name: name.to_string(),
        iters,
        per_iter_ns: per_iter.as_nanos(),
    });
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
