//! Reproducing a crash caused by a data race (paper §5.2.1, Table 2).
//!
//! The Crasher workload publishes and transiently nulls a shared pointer
//! without synchronization; the reader thread eventually dereferences the
//! null and crashes.  iReplayer rolls back and re-executes the epoch,
//! enforcing the recorded synchronization order and retrying with random
//! delays until the crash is reproduced.
//!
//! Run with: `cargo run -p ireplayer --example racy_replay`

use ireplayer::{Config, Error, Runtime};
use ireplayer_workloads::{Crasher, Workload, WorkloadSpec};

fn main() -> Result<(), Error> {
    let crasher = Crasher::table2();
    let spec = WorkloadSpec::tiny();

    // One warm runtime hosts every execution: each run resets to
    // quiescence and reuses the arena and log storage of the previous one,
    // which is exactly the long-lived in-situ deployment the paper targets.
    let config = Config::builder()
        .arena_size(16 << 20)
        .heap_block_size(256 << 10)
        .max_replay_attempts(16)
        .build()?;
    let runtime = Runtime::new(config)?;

    let mut crashes = 0u32;
    let mut reproduced_first_try = 0u32;
    let runs = 10;
    for run in 0..runs {
        crasher.stage(&runtime, &spec);
        let report = runtime.run(crasher.program(&spec))?;

        if report.outcome.is_success() {
            println!("run {run}: the race did not manifest");
            continue;
        }
        crashes += 1;
        let validation = report
            .replay_validations
            .first()
            .expect("a diagnostic replay runs after the crash");
        println!(
            "run {run}: crashed ({}), reproduced after {} replay attempt(s), matched={}",
            report.faults.first().map(|f| f.kind.to_string()).unwrap_or_default(),
            validation.attempts,
            validation.matched,
        );
        if validation.matched && validation.attempts == 1 {
            reproduced_first_try += 1;
        }
    }

    println!("\n{crashes}/{runs} executions crashed (the paper's Crasher crashes ~83% of the time)");
    if crashes > 0 {
        println!(
            "{reproduced_first_try}/{crashes} crashes were reproduced on the first replay \
             (the paper reports 99.87%)"
        );
    }
    Ok(())
}
