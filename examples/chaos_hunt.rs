//! Chaos hunting walkthrough: sweep seeded fault plans over a workload
//! with a planted ordering bug, delta-debug the failing plan down to the
//! smallest reproducer, and turn it into a durable regression fixture.
//!
//! Run with: `cargo run -p ireplayer --example chaos_hunt [out-dir]`
//!
//! Demonstrates the explorer's four stages:
//!
//! 1. **sweep**: one compiled [`ChaosPlan`] per seed, fanned across the
//!    runtime's partitions through the admission scheduler;
//! 2. **classify**: each run buckets as clean, a typed fault, divergence,
//!    quota exhaustion, or a hang;
//! 3. **shrink**: the failing plan is minimized against its failure
//!    fingerprint -- whole fault classes dropped, then schedules halved,
//!    re-executing after each cut;
//! 4. **fixture**: the minimized plan re-runs on a recording runtime and
//!    lands as a replayable [`Trace`] test fixture.

use ireplayer::{ChaosExplorer, ChaosProfile, Config, Error, ExploreSubject, Runtime, Trace};
use ireplayer_workloads::{Ledger, Workload, WorkloadSpec};
use std::path::PathBuf;

fn main() -> Result<(), Error> {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    std::fs::create_dir_all(&out_dir).expect("create the fixture output directory");

    // A two-partition runtime: the sweep probes two plans concurrently and
    // queues the rest on the admission queue.
    let config = Config::builder()
        .partitions(2)
        .arena_size(16 << 20)
        .heap_block_size(256 << 10)
        .quiescence_timeout_ms(20_000)
        .build()?;
    let runtime = Runtime::new(config)?;

    // The subject: a ledger-posting client that counts an entry as posted
    // before the acknowledgement arrives -- and forgets to compensate on a
    // connection reset.  The closing audit `posted == acked` fails exactly
    // when a reset lands between a send and its acknowledgement.
    let spec = WorkloadSpec::tiny();
    let subject = ExploreSubject::new("flaky-ledger", move || Ledger.program(&spec)).with_stage(Ledger::stage_os);
    let explorer = ChaosExplorer::new(&runtime, subject);

    // 1 + 2 + 3. Hunt: sweep 32 seeds of the heavy profile, then minimize
    // one plan per distinct failure fingerprint.
    let seeds: Vec<u64> = (0..32).collect();
    let report = explorer.hunt(&seeds, ChaosProfile::heavy())?;
    println!(
        "swept {} plans: {} failed, {} distinct failure(s), {} total probe runs",
        report.outcomes.len(),
        report.failures(),
        report.finds.len(),
        report.trials
    );
    for outcome in report.outcomes.iter().take(8) {
        println!(
            "  seed {:>3}  weight {:>5}  injected {:>3}  -> {}",
            outcome.plan.seed,
            outcome.plan.weight(),
            outcome.faults_injected,
            outcome.outcome
        );
    }

    let Some(find) = report.finds.first() else {
        println!("no failure found -- the planted bug needs a luckier seed range");
        return Ok(());
    };
    println!(
        "minimized seed {} from weight {} to {} ({:.0}x) in {} trials:",
        find.original.seed,
        find.original.weight(),
        find.minimized.weight(),
        find.shrink_ratio(),
        find.trials
    );
    for step in &find.steps {
        println!("  {step}");
    }
    println!("failure fingerprint: {}", find.fingerprint);

    // 4. The fixture: a durable trace of the minimized failing run.  Any
    // fresh runtime configured with the minimized plan replays it
    // byte-identically -- fault and all.
    let fixture = out_dir.join("chaos-hunt-min.json");
    let trace = explorer.emit_fixture(find, &fixture)?;
    println!(
        "fixture written to {} (chaos digest {:#018x})",
        fixture.display(),
        trace.chaos_digest()
    );

    let mut replay_config = runtime.config().clone();
    replay_config.partitions = 1;
    replay_config.chaos = Some(find.minimized.clone());
    let fresh = Runtime::new(replay_config)?;
    let reopened = Trace::open(&fixture)?;
    let spec = WorkloadSpec::tiny();
    let replayed = fresh.replay_trace(Ledger.program(&spec), &reopened)?;
    assert_eq!(Some(replayed.fingerprint()), reopened.fingerprint());
    println!(
        "replayed fingerprint-identically on a fresh runtime ({})",
        replayed.fingerprint()
    );

    // The full machine-readable report.
    println!("{}", report.to_json());
    Ok(())
}
