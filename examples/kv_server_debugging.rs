//! Interactive debugging of a key-value server crash (paper §4.3).
//!
//! A memcached-style server thread corrupts its own bookkeeping and hits an
//! assertion.  The replay debugger intercepts the abnormal exit exactly as
//! the GDB integration does: the debugging session inspects the faulting
//! state, places a watchpoint on the corrupted counter, and issues a
//! rollback; the re-execution stops (notifies) at the write that corrupted
//! it, without restarting the server.
//!
//! Run with: `cargo run -p ireplayer --example kv_server_debugging`

use std::sync::{Arc, Mutex};

use ireplayer::{Config, Error, MemAddr, PeerScript, Program, Runtime, Span, Step};
use ireplayer_detect::ReplayDebugger;

/// A tiny shared cell between the program closure and the debugger callback
/// (std types only; no extra dependencies).
#[derive(Default)]
struct Cell(Mutex<Option<MemAddr>>);

impl Cell {
    fn set(&self, value: MemAddr) {
        *self.0.lock().unwrap() = Some(value);
    }

    fn get(&self) -> Option<MemAddr> {
        *self.0.lock().unwrap()
    }
}

fn main() -> Result<(), Error> {
    let config = Config::builder()
        .arena_size(16 << 20)
        .heap_block_size(256 << 10)
        .build()?;
    let runtime = Runtime::new(config)?;

    // Scripted clients for the server to accept.
    runtime.os().register_peer(
        "kv:11211",
        PeerScript::Client {
            seed: 42,
            requests: 6,
            request_len: 32,
        },
    );
    runtime.os().enqueue_clients("kv:11211", 2);

    let debugger = ReplayDebugger::new();
    runtime.add_hook(debugger.clone());

    // The debugger session: inspect the fault, then watch the corrupted
    // counter during the rollback (the `watch` + `rollback` commands of the
    // GDB workflow).
    let counter_cell = Arc::new(Cell::default());
    let counter_for_session = Arc::clone(&counter_cell);
    debugger.on_fault_session(move |session| {
        println!("[debugger] fault intercepted: {}", session.fault());
        if let Some(counter) = counter_for_session.get() {
            println!(
                "[debugger] stored_items counter holds {} -- watching it during rollback",
                session.read_u64(counter)
            );
            session.watch(Span::new(counter, 8));
        }
    });

    let counter_for_program = Arc::clone(&counter_cell);
    let program = Program::new("kv-server", move |ctx| {
        let stored_items = ctx.global("stored_items", 8);
        counter_for_program.set(stored_items);
        let lock = ctx.mutex();

        let worker = ctx.spawn("kv-worker", move |ctx| {
            let Some(connection) = ctx.accept("kv:11211") else {
                return Step::Done;
            };
            loop {
                let request = ctx.recv(connection, 64);
                if request.is_empty() {
                    break;
                }
                let item = ctx.alloc(64);
                ctx.write_bytes(item, &request[..request.len().min(64)]);
                ctx.lock(lock);
                let count = ctx.read_u64(stored_items);
                // BUG: the counter is bumped by the request length instead
                // of by one, corrupting the server's bookkeeping.
                ctx.write_u64(stored_items, count + request.len() as u64);
                ctx.unlock(lock);
                ctx.send(connection, b"STORED\r\n");
            }
            ctx.close(connection);
            Step::Yield
        });
        ctx.join(worker);

        let stored = ctx.read_u64(stored_items);
        ctx.assert_that(
            stored <= 12,
            format!("bookkeeping says {stored} items but only 12 requests exist"),
        );
        Step::Done
    });

    let report = runtime.run(program)?;
    println!("\nrun outcome: {:?}", report.outcome);
    println!("debugging sessions: {}", debugger.sessions());
    println!("watchpoint notifications during rollback: {}", debugger.hits().len());
    for hit in debugger.hits().iter().take(3) {
        println!(
            "  thread {} wrote {} bytes at {}{}",
            hit.thread.0,
            hit.access.len,
            hit.access.addr,
            hit.site.as_ref().map(|s| format!(" ({s})")).unwrap_or_default()
        );
    }
    assert!(debugger.sessions() >= 1);
    let _ = MemAddr::NULL;
    Ok(())
}
