//! Multi-tenant sessions: one runtime, several programs running
//! **simultaneously** on partitioned arenas, each with a report
//! byte-identical to a solo run of the same program.
//!
//! Run with: `cargo run -p ireplayer --example multi_tenant`

use ireplayer::{Config, Error, Program, Runtime, Step};

const TENANTS: usize = 3;

/// A deterministic tenant workload: `workers` threads fill and sum their
/// own buffers under a lock.  Parameterized per tenant so the tenants are
/// genuinely different programs.
fn tenant_program(tenant: usize) -> Program {
    let workers = 2 + (tenant as u64 % 3);
    Program::new(format!("tenant-{tenant}"), move |ctx| {
        let total = ctx.global("total", 8);
        let lock = ctx.mutex();
        let mut handles = Vec::new();
        for worker in 0..workers {
            handles.push(ctx.spawn("worker", move |ctx| {
                let scratch = ctx.alloc(256);
                ctx.fill(scratch, 256, worker as u8 + 1);
                ctx.write_u64(scratch, worker * 11 + 5);
                let contribution = ctx.read_u64(scratch);
                ctx.lock(lock);
                let sum = ctx.read_u64(total);
                ctx.write_u64(total, sum + contribution);
                ctx.unlock(lock);
                ctx.free(scratch);
                Step::Done
            }));
        }
        for handle in handles {
            ctx.join(handle);
        }
        let expected: u64 = (0..workers).map(|w| w * 11 + 5).sum();
        let sum = ctx.read_u64(total);
        ctx.assert_that(sum == expected, "every contribution landed");
        Step::Done
    })
}

fn config(partitions: usize) -> Result<Config, Error> {
    Config::builder()
        .partitions(partitions)
        .arena_size(8 << 20)
        .heap_block_size(256 << 10)
        .build()
}

fn main() -> Result<(), Error> {
    // Solo baselines: each tenant's program on its own fresh runtime.
    let mut solo_fingerprints = Vec::new();
    for tenant in 0..TENANTS {
        let runtime = Runtime::new(config(1)?)?;
        let report = runtime.run(tenant_program(tenant))?;
        assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
        solo_fingerprints.push(report.fingerprint());
    }

    // One multi-tenant runtime: all tenants launched before any finishes
    // its wait, each claiming its own partition.
    let runtime = Runtime::new(config(TENANTS)?)?;
    println!("runtime with {} partitions:", runtime.partition_count());
    let sessions: Vec<_> = (0..TENANTS)
        .map(|tenant| runtime.launch(tenant_program(tenant)))
        .collect::<Result<_, _>>()?;
    for session in &sessions {
        let partition = session.partition().expect("a free runtime admits immediately");
        println!("  tenant on partition {partition} -> {:?}", session.status().phase);
    }
    for (tenant, session) in sessions.into_iter().enumerate() {
        let report = session.wait()?;
        assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
        let identical = report.fingerprint() == solo_fingerprints[tenant];
        println!(
            "  tenant-{tenant}: {} sync events, {} allocations, fingerprint identical to solo run: {identical}",
            report.sync_events, report.allocations
        );
        assert!(identical, "a neighbour perturbed tenant-{tenant}");
    }

    // After the staggered teardown every partition is back at idle.
    let diagnostics = runtime.diagnostics();
    for p in &diagnostics.partitions {
        println!(
            "  partition {}: active={} live_threads={} pooled_lists={}",
            p.partition, p.session_active, p.live_threads, p.pooled_thread_lists
        );
        assert!(!p.session_active && p.live_threads == 0);
    }
    println!("multi-tenant identity confirmed: every tenant matched its solo fingerprint");

    // Overcommit: twice as many launches as partitions.  The excess
    // launches queue on the admission scheduler (none is refused) and a
    // freed partition immediately picks up the oldest queued tenant --
    // every report still matches its solo fingerprint.
    let sessions: Vec<_> = (0..2 * TENANTS)
        .map(|launch| runtime.launch(tenant_program(launch % TENANTS)))
        .collect::<Result<_, _>>()?;
    let queued = sessions.iter().filter(|s| s.partition().is_none()).count();
    println!(
        "overcommit: {} launches on {} partitions, {queued} queued (queue depth now {})",
        sessions.len(),
        runtime.partition_count(),
        runtime.diagnostics().admission_queue_depth
    );
    for (launch, session) in sessions.into_iter().enumerate() {
        let report = session.wait()?;
        assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
        assert_eq!(
            report.fingerprint(),
            solo_fingerprints[launch % TENANTS],
            "queued admission perturbed launch {launch}"
        );
    }
    println!(
        "overcommit confirmed: all {} launches completed solo-identical",
        2 * TENANTS
    );
    Ok(())
}
