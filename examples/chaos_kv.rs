//! Chaos testing walkthrough: a seeded fault plan injected under the
//! connection-pool KV server, recorded durably, and replayed
//! byte-identically -- including the injected faults -- on a fresh runtime.
//!
//! Run with: `cargo run -p ireplayer --example chaos_kv [out-dir]`
//!
//! Demonstrates the full loop:
//!
//! 1. compile a [`ChaosPlan`] from a seed and a [`ChaosProfile`];
//! 2. run the `kv-pool` server under the plan and watch the injections
//!    live (`EventFilter::faults`) and in the diagnostics counters;
//! 3. record the chaotic run to a durable trace -- the plan digest travels
//!    in the trace header;
//! 4. replay the trace on a fresh runtime with the same plan and prove
//!    the reproduction by fingerprint;
//! 5. show that a runtime with a *different* plan is refused up front
//!    with a typed error.

use std::path::PathBuf;

use ireplayer::{
    ChaosPlan, ChaosProfile, Config, Error, ErrorKind, EventFilter, FaultClass, Runtime, SessionEvent, Trace,
};
use ireplayer_workloads::{workload_by_name, WorkloadSpec};

fn config() -> ireplayer::ConfigBuilder {
    Config::builder()
        .arena_size(16 << 20)
        .heap_block_size(256 << 10)
        .quiescence_timeout_ms(20_000)
}

fn main() -> Result<(), Error> {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let path = out_dir.join("chaos-kv.trace");

    // 1. A plan is a pure function of (seed, profile): same seed, same
    // faults, on every machine, forever.
    let plan = ChaosPlan::compile(0x20, ChaosProfile::heavy());
    println!("plan digest: {:#018x}", plan.digest());

    // 2 + 3. Record the chaotic run.  The KV server is written against the
    // fallible syscall surface, so it survives: transient failures retry,
    // resets retire the connection, denied descriptors and allocations
    // degrade service instead of crashing it.
    let workload = workload_by_name("kv-pool").expect("registered workload");
    let spec = WorkloadSpec::small();
    let runtime = Runtime::new(config().chaos(plan.clone()).record_to(&path).build()?)?;
    let events = runtime.subscribe(EventFilter::none().faults());
    workload.stage(&runtime, &spec);
    let recorded = runtime.run(workload.program(&spec))?;
    assert!(recorded.outcome.is_success(), "faults: {:?}", recorded.faults);

    let injected = events
        .drain()
        .iter()
        .filter(|e| matches!(e, SessionEvent::FaultInjected { .. }))
        .count();
    println!("{injected} faults injected live; per class:");
    let diagnostics = runtime.diagnostics();
    for class in FaultClass::ALL {
        println!(
            "  {:>14}: {}",
            class.name(),
            diagnostics.faults_injected[class.code() as usize]
        );
    }
    drop(runtime);

    // 4. A fresh runtime with the same plan replays the trace -- and the
    // injections -- byte-identically.
    let trace = Trace::open(&path)?;
    assert_eq!(trace.chaos_digest(), plan.digest());
    let fresh = Runtime::new(config().chaos(plan).build()?)?;
    let replayed = fresh.replay_trace(workload.program(&spec), &trace)?;
    assert_eq!(replayed.fingerprint(), recorded.fingerprint());
    println!(
        "replayed byte-identically from {} (fingerprint {})",
        path.display(),
        replayed.fingerprint()
    );

    // 5. The wrong plan cannot silently diverge: the digest in the trace
    // header refuses it before anything runs.
    let wrong = ChaosPlan::compile(0x21, ChaosProfile::heavy());
    let refusing = Runtime::new(config().chaos(wrong).build()?)?;
    let error = refusing
        .replay_trace(workload.program(&spec), &trace)
        .expect_err("a mismatched plan must be refused");
    assert_eq!(error.kind(), ErrorKind::TraceMismatch);
    println!("mismatched plan refused: {error}");
    Ok(())
}
