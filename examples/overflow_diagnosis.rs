//! On-site diagnosis of a heap buffer overflow (paper §4.1).
//!
//! A producer thread copies records into a buffer that is one element too
//! small.  The overflow detector notices the corrupted allocation canary at
//! the end of the epoch, rolls the process back, re-executes the epoch with
//! a watchpoint on the corrupted address, and reports the exact source line
//! of the overflowing write together with the allocation site.
//!
//! Run with: `cargo run -p ireplayer --example overflow_diagnosis`

use ireplayer::{Error, Program, Runtime, Step};
use ireplayer_detect::{detection_config, OverflowDetector};

fn main() -> Result<(), Error> {
    let config = detection_config()
        .arena_size(16 << 20)
        .heap_block_size(256 << 10)
        .build()?;
    let runtime = Runtime::new(config)?;
    let detector = OverflowDetector::new();
    runtime.add_hook(detector.clone());

    let program = Program::new("records", |ctx| {
        let record_count = 8u64;
        // BUG: room for 8 records of 8 bytes, but the loop below writes 9.
        let records = ctx.alloc((record_count * 8) as usize);
        let lock = ctx.mutex();
        let producer = ctx.spawn("producer", move |ctx| {
            ctx.lock(lock);
            for i in 0..=record_count {
                // The i == record_count iteration writes past the end.
                ctx.write_u64(records + i * 8, i * 1000 + 7);
            }
            ctx.unlock(lock);
            Step::Done
        });
        ctx.join(producer);
        Step::Done
    });

    let report = runtime.run(program)?;
    println!("run outcome: {:?}", report.outcome);
    println!("replays for diagnosis: {}", report.replay_attempts);

    let bugs = detector.reports();
    assert_eq!(bugs.len(), 1, "the overflow must be detected");
    for bug in &bugs {
        println!("\n{bug}");
    }
    assert!(
        bugs[0].culprit.is_some(),
        "the watchpoint replay must identify the overflowing write"
    );
    Ok(())
}
