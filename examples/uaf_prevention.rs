//! Diagnosing a use-after-free and hardening the next deployment
//! (paper §4.2 and the evidence-based prevention workflow of §1).
//!
//! A cache evicts an entry that a statistics path still updates.  The
//! use-after-free detector finds the dangling write from the poisoned
//! quarantine, replays the epoch with a watchpoint to name the faulting
//! statement, and the prevention advisor turns the same evidence into a
//! hardened configuration for the next run: a larger quarantine keeps
//! objects freed at the implicated site poisoned for longer, so the bug
//! keeps being caught instead of silently corrupting a reused allocation.
//!
//! Run with: `cargo run -p ireplayer --example uaf_prevention`

use ireplayer::{Error, Program, Runtime, Step};
use ireplayer_detect::{detection_config, PreventionAdvisor, UseAfterFreeDetector};

fn buggy_cache_program() -> Program {
    Program::new("cache", |ctx| {
        // A small cache of four heap entries.
        let entries: Vec<_> = (0..4u64)
            .map(|index| {
                let entry = ctx.alloc(64);
                ctx.write_u64(entry, index);
                entry
            })
            .collect();
        let hottest = entries[2];

        // Serve lookups from a worker thread.
        let lock = ctx.mutex();
        let hits = ctx.global("cache_hits", 8);
        let served: Vec<_> = entries.clone();
        let worker = ctx.spawn("lookups", move |ctx| {
            for round in 0..32u64 {
                let entry = served[(round % 4) as usize];
                let value = ctx.read_u64(entry);
                ctx.lock(lock);
                let total = ctx.read_u64(hits);
                ctx.write_u64(hits, total.wrapping_add(value));
                ctx.unlock(lock);
            }
            Step::Done
        });
        ctx.join(worker);

        // Eviction frees every entry...
        for entry in &entries {
            ctx.free(*entry);
        }
        // ...but the statistics path still holds a pointer to the hottest
        // entry and bumps its per-entry counter: a use-after-free write.
        ctx.write_u64(hottest + 16, 1);
        Step::Done
    })
}

fn main() -> Result<(), Error> {
    // First deployment: detectors plus the prevention advisor.
    let config = detection_config()
        .arena_size(16 << 20)
        .heap_block_size(256 << 10)
        .build()?;
    let runtime = Runtime::new(config)?;
    let detector = UseAfterFreeDetector::new();
    let advisor = PreventionAdvisor::new();
    runtime.add_hook(detector.clone());
    runtime.add_hook(advisor.clone());

    let report = runtime.run(buggy_cache_program())?;
    println!("first run outcome: {:?}", report.outcome);

    let bugs = detector.reports();
    assert!(!bugs.is_empty(), "the use-after-free must be detected");
    for bug in &bugs {
        println!("\n{bug}");
    }

    // The advisor turns the evidence into a hardening plan.
    let plan = advisor.plan();
    println!("\nprevention plan:\n{plan}");
    assert!(!plan.is_empty());

    // Second deployment: the same program under the hardened configuration.
    let hardened = plan.harden(
        detection_config()
            .arena_size(16 << 20)
            .heap_block_size(256 << 10)
            .build()?,
    );
    println!(
        "hardened configuration: quarantine budget {} bytes",
        hardened.quarantine_bytes
    );
    let second = Runtime::new(hardened)?;
    let second_detector = UseAfterFreeDetector::new();
    second.add_hook(second_detector.clone());
    let second_report = second.run(buggy_cache_program())?;
    println!("second run outcome: {:?}", second_report.outcome);
    assert!(
        !second_detector.reports().is_empty(),
        "the hardened run keeps catching the dangling write"
    );
    println!("\nthe dangling write is still caught (and still harmless) under the hardened configuration");
    Ok(())
}
