//! Durable traces: record a run to disk, then replay it byte-identically
//! on a **fresh runtime that never saw the original** -- the out-of-process
//! replay loop, demonstrated inside one process for convenience.
//!
//! Run with: `cargo run -p ireplayer --example durable_trace [out-dir]`
//!
//! Writes `durable-binary.trace` and `durable-json.trace` (the same
//! recording in both encodings) into `out-dir` (default: the system temp
//! directory).  CI runs this to produce the published trace corpus.

use std::path::PathBuf;

use ireplayer::{Config, Error, Program, Runtime, Step, Trace, TraceFormat};

/// A deterministic two-epoch workload: staged file I/O, a worker under a
/// lock, heap traffic.  Its step counter lives in simulated memory so a
/// rollback rewinds it with everything else.
fn workload() -> Program {
    Program::new("durable-example", |ctx| {
        let step_cell = ctx.global("step", 8);
        let step = ctx.read_u64(step_cell);
        ctx.write_u64(step_cell, step + 1);
        if step == 0 {
            let total = ctx.global("total", 8);
            let lock = ctx.mutex();
            let scratch = ctx.alloc(192);
            ctx.fill(scratch, 192, 0x42);
            let fd = ctx.open("seed.bin").expect("staged file");
            let data = ctx.read(fd, 24);
            ctx.write_u64(scratch, data.len() as u64);
            ctx.close(fd);
            let worker = ctx.spawn("worker", move |ctx| {
                ctx.lock(lock);
                let value = ctx.read_u64(total);
                ctx.write_u64(total, value + 7);
                ctx.unlock(lock);
                Step::Done
            });
            ctx.join(worker);
            ctx.free(scratch);
            ctx.end_epoch();
            return Step::Yield;
        }
        let total = ctx.global("total", 8);
        let value = ctx.read_u64(total);
        ctx.assert_that(value == 7, "the worker ran");
        Step::Done
    })
}

fn main() -> Result<(), Error> {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);

    for format in [TraceFormat::Binary, TraceFormat::Json] {
        let path = out_dir.join(format!("durable-{format}.trace"));

        // Record: the trace file grows epoch by epoch as the run closes
        // them, so it survives even a recorder that dies mid-run.
        let config = Config::builder()
            .arena_size(4 << 20)
            .heap_block_size(128 << 10)
            .record_to(&path)
            .trace_format(format)
            .build()?;
        let runtime = Runtime::new(config)?;
        runtime.os().create_file("seed.bin", vec![0x5a; 64]);
        let recorded = runtime.run(workload())?;
        assert!(recorded.outcome.is_success(), "faults: {:?}", recorded.faults);
        drop(runtime);

        // Replay: a fresh runtime, nothing staged -- the trace restores
        // the simulated-OS inputs and proves the reproduction.  Strict
        // mode additionally matches every epoch's order logs in situ.
        let trace = Trace::open(&path)?;
        let fresh = Runtime::new(
            Config::builder()
                .arena_size(4 << 20)
                .heap_block_size(128 << 10)
                .build()?,
        )?;
        let replayed = fresh.replay_trace_strict(workload(), &trace)?;
        assert_eq!(replayed.fingerprint(), recorded.fingerprint());

        println!(
            "{format}: {} ({} epochs, {} events) -> replayed byte-identically, fingerprint {}",
            path.display(),
            trace.epoch_count(),
            trace.event_count(),
            replayed.fingerprint(),
        );
    }
    Ok(())
}
