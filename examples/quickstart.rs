//! Quick start: record a small multithreaded program, then force one
//! rollback and verify that the re-execution is identical.
//!
//! Run with: `cargo run -p ireplayer --example quickstart`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ireplayer::{Config, EpochDecision, EpochView, Program, ReplayRequest, Runtime, RuntimeError, Step, ToolHook};

/// A tool hook that asks for exactly one validation replay at the end of the
/// run -- the simplest possible use of the in-situ replay machinery.
struct ValidateOnce {
    requested: AtomicBool,
}

impl ToolHook for ValidateOnce {
    fn name(&self) -> &str {
        "validate-once"
    }

    fn at_epoch_end(&self, _view: &dyn EpochView) -> EpochDecision {
        if self.requested.swap(true, Ordering::SeqCst) {
            EpochDecision::Continue
        } else {
            EpochDecision::Replay(ReplayRequest::because("quickstart validation"))
        }
    }
}

fn main() -> Result<(), RuntimeError> {
    let config = Config::builder()
        .arena_size(16 << 20)
        .heap_block_size(256 << 10)
        .build()?;
    let runtime = Runtime::new(config)?;
    runtime.add_hook(Arc::new(ValidateOnce {
        requested: AtomicBool::new(false),
    }));

    // Four worker threads each append work into a shared accumulator under a
    // lock; the main thread checks the total.  Everything the program does
    // -- allocation, locking, the clock read -- is recorded.
    let program = Program::new("quickstart", |ctx| {
        let total = ctx.global("total", 8);
        let lock = ctx.mutex();
        let mut workers = Vec::new();
        for worker in 0..4u64 {
            workers.push(ctx.spawn("worker", move |ctx| {
                let scratch = ctx.alloc(128);
                let value = ctx.work(5_000) % 100 + worker;
                ctx.write_u64(scratch, value);
                let contribution = ctx.read_u64(scratch);
                ctx.lock(lock);
                let sum = ctx.read_u64(total);
                ctx.write_u64(total, sum + contribution);
                ctx.unlock(lock);
                ctx.free(scratch);
                Step::Done
            }));
        }
        for worker in workers {
            ctx.join(worker);
        }
        let when = ctx.now_ns();
        let total_value = ctx.read_u64(total);
        println!("[app] total = {total_value} at t={when}");
        Step::Done
    });

    let report = runtime.run(program)?;
    println!("outcome:           {:?}", report.outcome);
    println!("threads:           {}", report.threads);
    println!("sync events:       {}", report.sync_events);
    println!("replay attempts:   {}", report.replay_attempts);
    for validation in &report.replay_validations {
        println!(
            "replay of epoch {}: matched={} image-diff={}",
            validation.epoch,
            validation.matched,
            validation
                .image_diff
                .map(|d| d.to_string())
                .unwrap_or_else(|| "n/a".to_owned())
        );
    }
    assert!(report.replays_identical());
    println!("identical in-situ replay confirmed");
    Ok(())
}
