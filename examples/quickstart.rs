//! Quick start: record a small multithreaded program on a reusable
//! runtime, watch its epoch lifecycle live through a session, force one
//! rollback, and verify that the re-execution is identical.
//!
//! Run with: `cargo run -p ireplayer --example quickstart`

use ireplayer::{Config, Error, EventFilter, Program, ReplayRequest, Runtime, SessionEvent, Step};

fn sum_program(round: u64) -> Program {
    // Four worker threads each append work into a shared accumulator under a
    // lock; the main thread checks the total.  Everything the program does
    // -- allocation, locking, the clock read -- is recorded.
    Program::new("quickstart", move |ctx| {
        let total = ctx.global("total", 8);
        let lock = ctx.mutex();
        let mut workers = Vec::new();
        for worker in 0..4u64 {
            workers.push(ctx.spawn("worker", move |ctx| {
                let scratch = ctx.alloc(128);
                let value = ctx.work(5_000) % 100 + worker;
                ctx.write_u64(scratch, value);
                let contribution = ctx.read_u64(scratch);
                ctx.lock(lock);
                let sum = ctx.read_u64(total);
                ctx.write_u64(total, sum + contribution);
                ctx.unlock(lock);
                ctx.free(scratch);
                Step::Done
            }));
        }
        for worker in workers {
            ctx.join(worker);
        }
        let when = ctx.now_ns();
        let total_value = ctx.read_u64(total);
        println!("[app] round {round}: total = {total_value} at t={when}");
        Step::Done
    })
}

fn main() -> Result<(), Error> {
    let config = Config::builder()
        .arena_size(16 << 20)
        .heap_block_size(256 << 10)
        .build()?;
    // One warm runtime serves every round; nothing is reconstructed
    // between launches.
    let runtime = Runtime::new(config)?;

    for round in 0..2u64 {
        let session = runtime.launch(sum_program(round))?;

        // Observe the run live: a bounded event stream plus a lock-free
        // status snapshot.
        let events = session.subscribe(EventFilter::none().epochs().replays());
        let status = session.status();
        println!("[session] round {round} launched in phase {:?}", status.phase);

        // Steer the run live: ask for one validation replay at the next
        // epoch boundary -- the simplest possible use of the in-situ
        // replay machinery (no tool hook required).
        session.request_replay(ReplayRequest::because("quickstart validation"))?;

        let report = session.wait()?;
        for event in events.drain() {
            match event {
                SessionEvent::EpochBegan { epoch } => println!("[events] epoch {epoch} began"),
                SessionEvent::EpochEnded { epoch } => println!("[events] epoch {epoch} ended"),
                SessionEvent::ReplayStarted { epoch, attempt } => {
                    println!("[events] replaying epoch {epoch}, attempt {attempt}")
                }
                SessionEvent::ReplayFinished {
                    epoch,
                    attempts,
                    matched,
                } => {
                    println!("[events] replay of epoch {epoch} finished: attempts={attempts} matched={matched}")
                }
                other => println!("[events] {other:?}"),
            }
        }
        println!("outcome:           {:?}", report.outcome);
        println!("threads:           {}", report.threads);
        println!("sync events:       {}", report.sync_events);
        println!("replay attempts:   {}", report.replay_attempts);
        for validation in &report.replay_validations {
            println!(
                "replay of epoch {}: matched={} image-diff={}",
                validation.epoch,
                validation.matched,
                validation
                    .image_diff
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "n/a".to_owned())
            );
        }
        assert!(report.replays_identical());
        println!("identical in-situ replay confirmed\n");
    }

    let diag = runtime.diagnostics();
    println!(
        "warm reuse: arena allocated {} time(s), thread lists created {} / reused {}",
        diag.arena_allocations, diag.thread_lists_created, diag.thread_lists_reused
    );
    Ok(())
}
